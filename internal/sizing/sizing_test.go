package sizing

import (
	"context"
	"errors"
	"math"
	"testing"

	"vodalloc/internal/disk"
	"vodalloc/internal/dist"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

func TestMixFromProfile(t *testing.T) {
	gam := dist.MustGamma(2, 4)
	p := workload.MixedProfile(gam, dist.MustExponential(15))
	mix := MixFromProfile(p)
	if mix.PFF != 0.2 || mix.PRW != 0.2 || mix.PPAU != 0.6 {
		t.Errorf("mix %+v", mix)
	}
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleByBufferStep(t *testing.T) {
	m := workload.Example1Movies()[1] // l=60, w=0.5
	pts, err := FeasibleByBufferStep(m, DefaultRates, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("too few points: %d", len(pts))
	}
	for i, p := range pts {
		// Wait identity: B = l − n·w.
		if math.Abs(p.B-(m.Length-float64(p.N)*m.Wait)) > 1e-9 {
			t.Errorf("point %d violates Eq. 2: %+v", i, p)
		}
		if p.Hit < 0 || p.Hit > 1 {
			t.Errorf("point %d hit %g", i, p.Hit)
		}
		if p.Feasible != (p.Hit >= m.TargetHit) {
			t.Errorf("point %d feasibility flag wrong", i)
		}
		// Hit grows with buffer along the frontier.
		if i > 0 && p.Hit < pts[i-1].Hit-1e-6 {
			t.Errorf("hit not monotone in B at point %d: %g after %g", i, p.Hit, pts[i-1].Hit)
		}
	}
	if _, err := FeasibleByBufferStep(m, DefaultRates, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero step must fail")
	}
}

func TestMaxFeasibleStreamsAgainstLinearScan(t *testing.T) {
	m := workload.Movie{
		Name: "scan", Length: 60, Wait: 1, TargetHit: 0.5,
		Profile: workload.MixedProfile(dist.MustExponential(5), dist.MustExponential(15)),
	}
	got, err := MaxFeasibleStreams(m, DefaultRates)
	if err != nil {
		t.Fatal(err)
	}
	// Linear scan oracle.
	best := 0
	for n := 1; n <= 60; n++ {
		b := 60 - float64(n)
		hit, err := hitAt(context.Background(), m, DefaultRates, n, b)
		if err != nil {
			t.Fatal(err)
		}
		if hit >= 0.5 {
			best = n
		}
	}
	if got.N != best {
		t.Errorf("binary search %d vs scan %d", got.N, best)
	}
	if !got.Feasible || got.Hit < 0.5 {
		t.Errorf("returned point not feasible: %+v", got)
	}
}

func TestMaxFeasibleStreamsInfeasible(t *testing.T) {
	// Long pauses with half the movie buffered at n=1 cannot reach 0.95.
	m := workload.Movie{
		Name: "hopeless", Length: 60, Wait: 30, TargetHit: 0.95,
		Profile: vcr.Profile{PPAU: 1, DurPAU: dist.MustExponential(500), Think: dist.MustExponential(15)},
	}
	if _, err := MaxFeasibleStreams(m, DefaultRates); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestPureBatchingStreamsExample1(t *testing.T) {
	if got := PureBatchingStreams(workload.Example1Movies()); got != 1230 {
		t.Errorf("pure batching %d want 1230 (paper Example 1)", got)
	}
}

func TestMinBufferPlanExample1Shape(t *testing.T) {
	movies := workload.Example1Movies()
	plan, err := MinBufferPlan(movies, DefaultRates, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocs) != 3 {
		t.Fatalf("allocs %d", len(plan.Allocs))
	}
	var sumN int
	var sumB float64
	for i, a := range plan.Allocs {
		m := movies[i]
		if a.Hit < m.TargetHit {
			t.Errorf("%s: hit %.3f below target", a.Movie, a.Hit)
		}
		if math.Abs(a.B-(m.Length-float64(a.N)*m.Wait)) > 1e-9 {
			t.Errorf("%s: Eq. 2 violated", a.Movie)
		}
		sumN += a.N
		sumB += a.B
	}
	if sumN != plan.TotalStreams || math.Abs(sumB-plan.TotalBuffer) > 1e-9 {
		t.Error("plan totals inconsistent")
	}
	// The paper's headline: hundreds of streams saved versus the
	// 1230-stream pure-batching baseline at the cost of ~100 buffered
	// minutes.
	if plan.TotalStreams >= 1230 {
		t.Errorf("no stream savings: %d", plan.TotalStreams)
	}
	if saved := 1230 - plan.TotalStreams; saved < 300 {
		t.Errorf("savings %d streams implausibly small", saved)
	}
	if plan.TotalBuffer <= 0 || plan.TotalBuffer > 225 {
		t.Errorf("total buffer %.1f outside plausible range", plan.TotalBuffer)
	}
}

func TestMinBufferPlanStreamBudget(t *testing.T) {
	movies := workload.Example1Movies()
	unconstrained, err := MinBufferPlan(movies, DefaultRates, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := unconstrained.TotalStreams - 50
	plan, err := MinBufferPlan(movies, DefaultRates, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalStreams > budget {
		t.Errorf("budget violated: %d > %d", plan.TotalStreams, budget)
	}
	if plan.TotalBuffer <= unconstrained.TotalBuffer {
		t.Error("tighter stream budget must cost more buffer")
	}
	// The greedy sheds from the smallest-w movie (movie1, w=0.1):
	// the added buffer should be ≈ 50·0.1 = 5 minutes.
	added := plan.TotalBuffer - unconstrained.TotalBuffer
	if math.Abs(added-5) > 1e-6 {
		t.Errorf("added buffer %.3f want 5 (greedy by smallest w)", added)
	}
	for _, a := range plan.Allocs {
		if a.Hit < 0.5 {
			t.Errorf("%s: budgeted plan broke the hit target: %.3f", a.Movie, a.Hit)
		}
	}
	// Impossible budget.
	if _, err := MinBufferPlan(movies, DefaultRates, 2, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("budget below movie count: want ErrInfeasible, got %v", err)
	}
}

func TestMinBufferPlanBufferBudget(t *testing.T) {
	movies := workload.Example1Movies()
	plan, err := MinBufferPlan(movies, DefaultRates, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinBufferPlan(movies, DefaultRates, 0, plan.TotalBuffer/2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("halved buffer budget: want ErrInfeasible, got %v", err)
	}
	if _, err := MinBufferPlan(nil, DefaultRates, 0, 0); !errors.Is(err, ErrBadParam) {
		t.Error("empty catalog must fail")
	}
}

func TestHardwareCostModelExample2(t *testing.T) {
	// Paper Example 2: $700 disk at 5 MB/s, 4 Mbps MPEG-2, $25/MB memory
	// → Cb = $750/movie-minute, Cn = $70/stream, φ ≈ 11.
	cm, err := HardwareCostModel(700, 5, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.Cb-750) > 1e-9 {
		t.Errorf("Cb = %g want 750", cm.Cb)
	}
	if math.Abs(cm.Cn-70) > 1e-9 {
		t.Errorf("Cn = %g want 70", cm.Cn)
	}
	if phi := cm.Phi(); phi < 10 || phi > 11 {
		t.Errorf("phi = %g want ≈ 11", phi)
	}
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := HardwareCostModel(700, 1, 40, 25); !errors.Is(err, ErrBadParam) {
		t.Error("stream faster than disk must fail")
	}
	if _, err := HardwareCostModel(0, 5, 4, 25); !errors.Is(err, ErrBadParam) {
		t.Error("zero price must fail")
	}
}

func TestCostCurveShape(t *testing.T) {
	movies := workload.Example1Movies()
	curve, err := CostCurve(movies, DefaultRates, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 10 {
		t.Fatalf("curve too short: %d", len(curve))
	}
	// Stream totals strictly increase along the curve.
	for i := 1; i < len(curve); i++ {
		if curve[i].TotalStreams <= curve[i-1].TotalStreams {
			t.Fatalf("curve not ordered at %d", i)
		}
		if curve[i].TotalBuffer >= curve[i-1].TotalBuffer {
			t.Fatalf("buffer must fall as streams grow at %d", i)
		}
	}
	// At φ = 11 every movie has φ·w > 1, so cost decreases with more
	// streams and the optimum is the right end (paper: "the minimum cost
	// occurs when the number of I/O streams reaches its maximum feasible
	// value because the cost of memory buffers dominate").
	min11, err := MinCostPoint(curve)
	if err != nil {
		t.Fatal(err)
	}
	if min11.TotalStreams != curve[len(curve)-1].TotalStreams {
		t.Errorf("φ=11 optimum at %d streams, want right end %d",
			min11.TotalStreams, curve[len(curve)-1].TotalStreams)
	}
	// At φ = 3 removing movie-1 streams (w=0.1, φ·w = 0.3 < 1) pays, so
	// the optimum moves into the interior (Figure 9's migration).
	curve3, err := CostCurve(movies, DefaultRates, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	min3, err := MinCostPoint(curve3)
	if err != nil {
		t.Fatal(err)
	}
	if min3.TotalStreams >= min11.TotalStreams {
		t.Errorf("φ=3 optimum (%d streams) should sit left of φ=11's (%d)",
			min3.TotalStreams, min11.TotalStreams)
	}
}

func TestCostCurveThinning(t *testing.T) {
	movies := workload.Example1Movies()
	curve, err := CostCurve(movies, DefaultRates, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) > 52 {
		t.Errorf("thinned curve has %d points", len(curve))
	}
	full, err := CostCurve(movies, DefaultRates, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Thinned endpoints must match the full curve's.
	if curve[0] != full[0] || curve[len(curve)-1] != full[len(full)-1] {
		t.Error("thinning lost the endpoints")
	}
	if _, err := CostCurve(movies, DefaultRates, 0, 0); !errors.Is(err, ErrBadParam) {
		t.Error("phi=0 must fail")
	}
	if _, err := MinCostPoint(nil); !errors.Is(err, ErrBadParam) {
		t.Error("empty curve must fail")
	}
}

func TestPlanCostUsesBothPrices(t *testing.T) {
	cm := CostModel{Cb: 750, Cn: 70}
	p := Plan{TotalStreams: 602, TotalBuffer: 113.5}
	want := 750*113.5 + 70*602
	if got := cm.PlanCost(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("cost %g want %g", got, want)
	}
}

func TestRoundBasedCostModelRaisesCn(t *testing.T) {
	rc := disk.RoundConfig{G: disk.Example2Geometry(), RoundSec: 1, StreamMbps: 4}
	naive, err := HardwareCostModel(700, 5, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RoundBasedCostModel(700, rc, 25)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cb != naive.Cb {
		t.Errorf("memory price must not change: %g vs %g", refined.Cb, naive.Cb)
	}
	// Mechanical overheads admit fewer streams per disk → pricier streams.
	if refined.Cn <= naive.Cn {
		t.Errorf("round-based Cn %.2f should exceed naive %.2f", refined.Cn, naive.Cn)
	}
	// And therefore a smaller φ (buffer relatively cheaper).
	if refined.Phi() >= naive.Phi() {
		t.Errorf("round-based phi %.2f should fall below naive %.2f", refined.Phi(), naive.Phi())
	}
	// Longer rounds amortize overhead: Cn approaches the naive figure.
	longRC := rc
	longRC.RoundSec = 10
	long, err := RoundBasedCostModel(700, longRC, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !(long.Cn < refined.Cn) {
		t.Errorf("longer rounds should cut Cn: %.2f vs %.2f", long.Cn, refined.Cn)
	}
	// Degenerate geometry fails loudly.
	bad := rc
	bad.StreamMbps = 100
	if _, err := RoundBasedCostModel(700, bad, 25); !errors.Is(err, ErrBadParam) {
		t.Errorf("over-rate stream: want ErrBadParam, got %v", err)
	}
	if _, err := RoundBasedCostModel(0, rc, 25); !errors.Is(err, ErrBadParam) {
		t.Error("zero price must fail")
	}
}
