package sizing

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"vodalloc/internal/dist"
	"vodalloc/internal/workload"
)

// frontierEval builds the same per-n evaluator the walker uses, against
// a given Evaluator's cache.
func frontierEval(e *Evaluator, m workload.Movie) func(int) (Point, error) {
	key := mixKey(m.Profile)
	return func(n int) (Point, error) {
		b := math.Max(0, m.Length-float64(n)*m.Wait)
		hit, err := e.hitAt(context.Background(), m, DefaultRates, key, n, b)
		if err != nil {
			return Point{}, err
		}
		return Point{N: n, B: b, Hit: hit, Feasible: hit >= m.TargetHit}, nil
	}
}

// Property: the gallop+bisect frontier walk lands on the same stream
// count as the exhaustive linear scan, across randomized movie shapes
// (length, wait, target, and duration scales). The walk's only
// assumption is monotonicity of feasibility along the frontier; this is
// the test that would catch a configuration violating it.
func TestPropertyFrontierWalkMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		length := 30 + rng.Float64()*90
		wait := length / (2 + rng.Float64()*28) // nMax between ~2 and ~30
		m := workload.Movie{
			Name:      "prop",
			Length:    length,
			Wait:      wait,
			TargetHit: 0.2 + rng.Float64()*0.7,
			Profile: workload.MixedProfile(
				dist.MustExponential(1+rng.Float64()*10),
				dist.MustExponential(5+rng.Float64()*20),
			),
		}
		e := &Evaluator{Workers: 1}
		got, gotErr := e.MaxFeasibleStreamsCtx(context.Background(), m, DefaultRates)
		nMax := int(math.Floor(m.Length / m.Wait))
		want, wantErr := e.maxFeasibleLinear(m, frontierEval(e, m), nMax)
		switch {
		case gotErr != nil && wantErr != nil:
			if !errors.Is(gotErr, ErrInfeasible) {
				t.Errorf("trial %d: unexpected error %v", trial, gotErr)
			}
		case gotErr != nil || wantErr != nil:
			t.Errorf("trial %d: walker err %v, linear err %v", trial, gotErr, wantErr)
		case got.N != want.N:
			t.Errorf("trial %d (l=%.1f w=%.2f target=%.2f): walker n=%d, linear n=%d",
				trial, m.Length, m.Wait, m.TargetHit, got.N, want.N)
		}
	}
}

// BenchmarkSizingFrontier measures one cold frontier search (cache
// cleared each iteration, so every probe integrates). ci.sh runs it with
// -benchmem as a smoke check; the interesting number is evaluations per
// search, which the walker keeps at O(log n*).
func BenchmarkSizingFrontier(b *testing.B) {
	b.ReportAllocs()
	m := workload.Example1Movies()[1]
	for i := 0; i < b.N; i++ {
		e := &Evaluator{Workers: 1}
		if _, err := e.MaxFeasibleStreams(m, DefaultRates); err != nil {
			b.Fatal(err)
		}
	}
}
