// Package sizing implements the paper's §5 application: using the
// analytic hit-probability model to pre-allocate buffer space and I/O
// streams across a set of popular movies so that each movie meets its
// maximum-wait and minimum-hit-probability targets (constraints C1/C2),
// while minimizing total buffer (Example 1) or total dollar cost under a
// buffer-to-stream price ratio φ (Example 2, Figure 9).
package sizing

import (
	"context"
	"errors"

	"vodalloc/internal/analytic"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

// ErrInfeasible reports that no allocation satisfies the targets.
var ErrInfeasible = errors.New("sizing: targets are infeasible")

// ErrBadParam reports invalid sizing parameters.
var ErrBadParam = errors.New("sizing: invalid parameter")

// Rates is the display-rate triple shared by the sizing computations.
// The paper's experiments use FF and RW at three times playback.
type Rates struct {
	PB, FF, RW float64
}

// DefaultRates matches the §4 experiments.
var DefaultRates = Rates{PB: 1, FF: 3, RW: 3}

// MixFromProfile converts a simulator/workload VCR profile into the
// analytic model's duration mix (they carry the same information; the
// profile adds the think-time process the model does not need).
func MixFromProfile(p vcr.Profile) analytic.Mix {
	return analytic.Mix{
		PFF: p.PFF, PRW: p.PRW, PPAU: p.PPAU,
		FF: p.DurFF, RW: p.DurRW, PAU: p.DurPAU,
	}
}

// Point is one feasible-set entry for a movie: a buffer/stream pair with
// its predicted hit probability (Figure 8's plotted points).
type Point struct {
	N        int
	B        float64
	Hit      float64
	Feasible bool
}

// hitAt evaluates the model at (l, B, n) for the movie's mix. The
// context is checked at entry and per quadrature panel inside the
// integrals, so a canceled sweep stops within one model evaluation.
func hitAt(ctx context.Context, m workload.Movie, r Rates, n int, b float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	model, err := analytic.New(analytic.Config{
		L: m.Length, B: b, N: n,
		RatePB: r.PB, RateFF: r.FF, RateRW: r.RW,
	})
	if err != nil {
		return 0, err
	}
	return model.HitMixCtx(ctx, MixFromProfile(m.Profile))
}

// FeasibleByBufferStep enumerates (B, n) pairs along the movie's
// wait-constrained frontier; it delegates to the shared Default
// evaluator (parallel sweep, memoized evaluations). See
// (*Evaluator).FeasibleByBufferStep.
func FeasibleByBufferStep(m workload.Movie, r Rates, step float64) ([]Point, error) {
	return Default.FeasibleByBufferStep(m, r, step)
}

// FeasibleByBufferStepCtx is FeasibleByBufferStep with cancellation
// checkpoints, via the shared Default evaluator.
func FeasibleByBufferStepCtx(ctx context.Context, m workload.Movie, r Rates, step float64) ([]Point, error) {
	return Default.FeasibleByBufferStepCtx(ctx, m, r, step)
}

// MaxFeasibleStreams returns the buffer-minimal feasible point of the
// movie's constant-wait frontier (paper step 3: minimize Σ B_i) via the
// shared Default evaluator. See (*Evaluator).MaxFeasibleStreams.
func MaxFeasibleStreams(m workload.Movie, r Rates) (Point, error) {
	return Default.MaxFeasibleStreams(m, r)
}

// MaxFeasibleStreamsCtx is MaxFeasibleStreams with cancellation
// checkpoints, via the shared Default evaluator.
func MaxFeasibleStreamsCtx(ctx context.Context, m workload.Movie, r Rates) (Point, error) {
	return Default.MaxFeasibleStreamsCtx(ctx, m, r)
}

// Allocation is the resource assignment for one movie.
type Allocation struct {
	Movie string
	N     int
	B     float64
	Hit   float64
	Wait  float64
}

// Plan is a complete multi-movie pre-allocation.
type Plan struct {
	Allocs       []Allocation
	TotalStreams int
	TotalBuffer  float64
}

// MinBufferPlan computes the paper's §5 constrained optimization via the
// shared Default evaluator (per-movie searches in parallel, memoized
// evaluations). See (*Evaluator).MinBufferPlan.
func MinBufferPlan(movies []workload.Movie, r Rates, maxStreams int, maxBuffer float64) (Plan, error) {
	return Default.MinBufferPlan(movies, r, maxStreams, maxBuffer)
}

// MinBufferPlanCtx is MinBufferPlan with cancellation checkpoints, via
// the shared Default evaluator.
func MinBufferPlanCtx(ctx context.Context, movies []workload.Movie, r Rates, maxStreams int, maxBuffer float64) (Plan, error) {
	return Default.MinBufferPlanCtx(ctx, movies, r, maxStreams, maxBuffer)
}

// sortByWait returns movie indices ordered by ascending wait target.
func sortByWait(movies []workload.Movie) []int {
	idx := make([]int, len(movies))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort; catalogs are small
		for j := i; j > 0 && movies[idx[j]].Wait < movies[idx[j-1]].Wait; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// PureBatchingStreams returns the stream count a bufferless batching
// system needs for the catalog (paper Example 1's 1230-stream baseline).
func PureBatchingStreams(movies []workload.Movie) int {
	total := 0
	for _, m := range movies {
		total += analytic.PureBatchingStreams(m.Length, m.Wait)
	}
	return total
}
