// Package sizing implements the paper's §5 application: using the
// analytic hit-probability model to pre-allocate buffer space and I/O
// streams across a set of popular movies so that each movie meets its
// maximum-wait and minimum-hit-probability targets (constraints C1/C2),
// while minimizing total buffer (Example 1) or total dollar cost under a
// buffer-to-stream price ratio φ (Example 2, Figure 9).
package sizing

import (
	"errors"
	"fmt"
	"math"

	"vodalloc/internal/analytic"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

// ErrInfeasible reports that no allocation satisfies the targets.
var ErrInfeasible = errors.New("sizing: targets are infeasible")

// ErrBadParam reports invalid sizing parameters.
var ErrBadParam = errors.New("sizing: invalid parameter")

// Rates is the display-rate triple shared by the sizing computations.
// The paper's experiments use FF and RW at three times playback.
type Rates struct {
	PB, FF, RW float64
}

// DefaultRates matches the §4 experiments.
var DefaultRates = Rates{PB: 1, FF: 3, RW: 3}

// MixFromProfile converts a simulator/workload VCR profile into the
// analytic model's duration mix (they carry the same information; the
// profile adds the think-time process the model does not need).
func MixFromProfile(p vcr.Profile) analytic.Mix {
	return analytic.Mix{
		PFF: p.PFF, PRW: p.PRW, PPAU: p.PPAU,
		FF: p.DurFF, RW: p.DurRW, PAU: p.DurPAU,
	}
}

// Point is one feasible-set entry for a movie: a buffer/stream pair with
// its predicted hit probability (Figure 8's plotted points).
type Point struct {
	N        int
	B        float64
	Hit      float64
	Feasible bool
}

// hitAt evaluates the model at (l, B, n) for the movie's mix.
func hitAt(m workload.Movie, r Rates, n int, b float64) (float64, error) {
	model, err := analytic.New(analytic.Config{
		L: m.Length, B: b, N: n,
		RatePB: r.PB, RateFF: r.FF, RateRW: r.RW,
	})
	if err != nil {
		return 0, err
	}
	return model.HitMix(MixFromProfile(m.Profile))
}

// FeasibleByBufferStep enumerates (B, n) pairs along the movie's
// wait-constrained frontier B = l − n·w at the given buffer step
// (Figure 8 uses 5-minute steps), marking which meet the hit target.
// Off-grid B values are snapped to the nearest integer stream count.
func FeasibleByBufferStep(m workload.Movie, r Rates, step float64) ([]Point, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !(step > 0) {
		return nil, fmt.Errorf("%w: step %v", ErrBadParam, step)
	}
	var pts []Point
	for b := 0.0; b <= m.Length+1e-9; b += step {
		n := int(math.Round((m.Length - b) / m.Wait))
		if n < 1 {
			break
		}
		bb := m.Length - float64(n)*m.Wait // snap to integer n
		if bb < 0 {
			bb = 0
		}
		hit, err := hitAt(m, r, n, bb)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{N: n, B: bb, Hit: hit, Feasible: hit >= m.TargetHit})
	}
	return pts, nil
}

// MaxFeasibleStreams returns the largest stream count n (and the
// corresponding B = l − n·w) whose predicted hit probability still meets
// the movie's target. Because the hit probability decreases along the
// constant-wait frontier as n grows (buffer shrinks), this is the
// buffer-minimal feasible point (paper step 3: minimize Σ B_i).
func MaxFeasibleStreams(m workload.Movie, r Rates) (Point, error) {
	if err := m.Validate(); err != nil {
		return Point{}, err
	}
	nMax := int(math.Floor(m.Length / m.Wait))
	if nMax < 1 {
		return Point{}, fmt.Errorf("%w: movie %q admits no streams", ErrInfeasible, m.Name)
	}
	eval := func(n int) (Point, error) {
		b := math.Max(0, m.Length-float64(n)*m.Wait)
		hit, err := hitAt(m, r, n, b)
		if err != nil {
			return Point{}, err
		}
		return Point{N: n, B: b, Hit: hit, Feasible: hit >= m.TargetHit}, nil
	}
	lo, err := eval(1)
	if err != nil {
		return Point{}, err
	}
	if !lo.Feasible {
		return Point{}, fmt.Errorf("%w: movie %q cannot reach P*=%.3f even with n=1 (hit %.3f)",
			ErrInfeasible, m.Name, m.TargetHit, lo.Hit)
	}
	hi, err := eval(nMax)
	if err != nil {
		return Point{}, err
	}
	if hi.Feasible {
		return hi, nil
	}
	// Binary search the feasibility boundary on the monotone frontier.
	loN, hiN := 1, nMax
	best := lo
	for hiN-loN > 1 {
		mid := (loN + hiN) / 2
		p, err := eval(mid)
		if err != nil {
			return Point{}, err
		}
		if p.Feasible {
			loN, best = mid, p
		} else {
			hiN = mid
		}
	}
	return best, nil
}

// Allocation is the resource assignment for one movie.
type Allocation struct {
	Movie string
	N     int
	B     float64
	Hit   float64
	Wait  float64
}

// Plan is a complete multi-movie pre-allocation.
type Plan struct {
	Allocs       []Allocation
	TotalStreams int
	TotalBuffer  float64
}

// MinBufferPlan computes the paper's §5 constrained optimization: the
// minimum-total-buffer allocation meeting every movie's (w_i, P*_i)
// targets, subject to Σn_i ≤ maxStreams and ΣB_i ≤ maxBuffer (pass 0 to
// leave a budget unconstrained). When the stream budget binds, streams
// are removed from the movies with the smallest w_i first — each removed
// stream costs w_i extra buffer minutes (Eq. 2), so this greedy order is
// buffer-optimal for the linear tradeoff.
func MinBufferPlan(movies []workload.Movie, r Rates, maxStreams int, maxBuffer float64) (Plan, error) {
	if len(movies) == 0 {
		return Plan{}, fmt.Errorf("%w: empty catalog", ErrBadParam)
	}
	var plan Plan
	points := make([]Point, len(movies))
	for i, m := range movies {
		p, err := MaxFeasibleStreams(m, r)
		if err != nil {
			return Plan{}, err
		}
		points[i] = p
		plan.TotalStreams += p.N
		plan.TotalBuffer += p.B
	}

	// Stream budget: shed streams from the cheapest-w movies first.
	if maxStreams > 0 && plan.TotalStreams > maxStreams {
		deficit := plan.TotalStreams - maxStreams
		order := sortByWait(movies)
		for _, i := range order {
			if deficit == 0 {
				break
			}
			give := points[i].N - 1 // keep at least one stream per movie
			if give > deficit {
				give = deficit
			}
			if give <= 0 {
				continue
			}
			points[i].N -= give
			added := float64(give) * movies[i].Wait
			points[i].B += added
			plan.TotalBuffer += added
			plan.TotalStreams -= give
			deficit -= give
			// Re-evaluate the hit at the new point (it only improves:
			// larger B at fixed w).
			hit, err := hitAt(movies[i], r, points[i].N, points[i].B)
			if err != nil {
				return Plan{}, err
			}
			points[i].Hit = hit
		}
		if deficit > 0 {
			return Plan{}, fmt.Errorf("%w: stream budget %d below the %d-movie minimum",
				ErrInfeasible, maxStreams, len(movies))
		}
	}

	if maxBuffer > 0 && plan.TotalBuffer > maxBuffer+1e-9 {
		return Plan{}, fmt.Errorf("%w: minimum buffer %.1f exceeds budget %.1f",
			ErrInfeasible, plan.TotalBuffer, maxBuffer)
	}

	plan.Allocs = make([]Allocation, len(movies))
	for i, m := range movies {
		plan.Allocs[i] = Allocation{
			Movie: m.Name, N: points[i].N, B: points[i].B,
			Hit: points[i].Hit, Wait: m.Wait,
		}
	}
	return plan, nil
}

// sortByWait returns movie indices ordered by ascending wait target.
func sortByWait(movies []workload.Movie) []int {
	idx := make([]int, len(movies))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort; catalogs are small
		for j := i; j > 0 && movies[idx[j]].Wait < movies[idx[j-1]].Wait; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// PureBatchingStreams returns the stream count a bufferless batching
// system needs for the catalog (paper Example 1's 1230-stream baseline).
func PureBatchingStreams(movies []workload.Movie) int {
	total := 0
	for _, m := range movies {
		total += analytic.PureBatchingStreams(m.Length, m.Wait)
	}
	return total
}
