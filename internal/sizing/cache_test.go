package sizing

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vodalloc/internal/checkpoint"
	"vodalloc/internal/dist"
	"vodalloc/internal/workload"
)

func cacheMovie(name string) workload.Movie {
	return workload.Movie{
		Name: name, Length: 60, Wait: 1, TargetHit: 0.5,
		Profile: workload.MixedProfile(dist.MustExponential(5), dist.MustExponential(15)),
	}
}

// warmEvaluator runs a handful of model evaluations through the cache.
func warmEvaluator(t *testing.T, e *Evaluator) {
	t.Helper()
	m := cacheMovie("cache-movie")
	key := mixKey(m.Profile)
	for _, n := range []int{5, 10, 20} {
		if _, err := e.hitAt(context.Background(), m, DefaultRates, key, n, 30); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evalcache.ckpt")
	e := &Evaluator{Workers: 1}
	warmEvaluator(t, e)
	stats := e.CacheStats()
	if stats.Entries == 0 || stats.Misses == 0 {
		t.Fatalf("warm-up left no cache traffic: %+v", stats)
	}

	wrote, err := e.SaveCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(wrote) != stats.Entries {
		t.Fatalf("saved %d of %d entries", wrote, stats.Entries)
	}

	fresh := &Evaluator{Workers: 1}
	loaded, err := fresh.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != wrote {
		t.Fatalf("loaded %d of %d entries", loaded, wrote)
	}
	if !reflect.DeepEqual(fresh.cache, e.cache) {
		t.Fatal("reloaded cache differs from the saved one")
	}

	// A warm cache answers the same evaluations without misses.
	warmEvaluator(t, fresh)
	if s := fresh.CacheStats(); s.Misses != 0 || s.Hits == 0 {
		t.Fatalf("reloaded cache missed: %+v", s)
	}
}

func TestCacheLoadRejectsCorruptionAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "evalcache.ckpt")
	e := &Evaluator{Workers: 1}

	if _, err := e.LoadCache(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cold start: want ErrNotExist, got %v", err)
	}

	warmEvaluator(t, e)
	if _, err := e.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := &Evaluator{}
	if _, err := fresh.LoadCache(path); !errors.Is(err, checkpoint.ErrChecksum) {
		t.Fatalf("corrupt snapshot: want ErrChecksum, got %v", err)
	}
	if s := fresh.CacheStats(); s.Entries != 0 {
		t.Fatalf("corrupt load left %d entries behind", s.Entries)
	}

	// A snapshot of the wrong kind is refused too.
	if err := checkpoint.WriteSnapshot(path, checkpoint.FormatVersion, checkpoint.KindSimRun, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.LoadCache(path); !errors.Is(err, checkpoint.ErrKind) {
		t.Fatalf("wrong kind: want ErrKind, got %v", err)
	}
}

func TestCacheAutoSavePersistsInBackground(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evalcache.ckpt")
	e := &Evaluator{Workers: 1}
	e.AutoSave(path, 1)
	// A background save kicked by the last insertion can outlive the
	// test body; drain it before TempDir cleanup removes the directory
	// out from under its temp file. (Cleanups run LIFO, so this waits
	// before the TempDir removal registered above.)
	t.Cleanup(func() {
		for {
			e.mu.Lock()
			saving := e.saving
			e.mu.Unlock()
			if !saving {
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	warmEvaluator(t, e)

	// The save runs in a goroutine; SaveCache here both synchronizes with
	// it (same mutex) and guarantees the file exists.
	if _, err := e.SaveCache(path); err != nil {
		t.Fatal(err)
	}
	fresh := &Evaluator{}
	if n, err := fresh.LoadCache(path); err != nil || n == 0 {
		t.Fatalf("autosaved cache: %d entries, %v", n, err)
	}
}
