package sizing

import (
	"encoding/binary"
	"fmt"
	"math"

	"vodalloc/internal/checkpoint"
)

// Cache persistence: the evaluator's memo cache is pure — each entry is
// a deterministic function of its key — so it can be snapshotted to
// disk and reloaded by a later process with no coherence protocol. A
// serving process persists the cache on drain and reloads it at
// startup, turning the expensive first-sweep warm-up into a cold-start
// read; entries that fail to round-trip are simply recomputed.

// CacheStats reports the memo cache's occupancy and lookup traffic.
type CacheStats struct {
	Entries uint64 `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// CacheStats returns a snapshot of the cache gauges.
func (e *Evaluator) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Entries: uint64(len(e.cache)), Hits: e.hits, Misses: e.misses}
}

// SaveCache atomically writes the cache to path as a checksummed
// snapshot and returns how many entries it wrote. Concurrent
// evaluations may keep running; they see the lock only while the
// entries are copied out.
func (e *Evaluator) SaveCache(path string) (int, error) {
	e.mu.Lock()
	keys := make([]evalKey, 0, len(e.cache))
	vals := make([]float64, 0, len(e.cache))
	for k, v := range e.cache {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	e.savedAt = len(e.cache)
	e.mu.Unlock()

	payload := binary.AppendUvarint(nil, uint64(len(keys)))
	for i, k := range keys {
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(k.l))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(k.b))
		payload = binary.AppendVarint(payload, int64(k.n))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(k.rates.PB))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(k.rates.FF))
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(k.rates.RW))
		payload = binary.AppendUvarint(payload, uint64(len(k.mix)))
		payload = append(payload, k.mix...)
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(vals[i]))
	}
	if err := checkpoint.WriteSnapshot(path, checkpoint.FormatVersion, checkpoint.KindEvalCache, payload); err != nil {
		return 0, err
	}
	return len(keys), nil
}

// LoadCache merges the snapshot at path into the cache and returns how
// many entries it loaded. A missing file returns os.ErrNotExist (a
// normal cold start); a corrupt or version-skewed snapshot returns the
// checkpoint package's typed error and loads nothing — the cache only
// ever re-warms by recomputation, never from doubtful bytes.
func (e *Evaluator) LoadCache(path string) (int, error) {
	kind, payload, err := checkpoint.ReadSnapshot(path, checkpoint.FormatVersion)
	if err != nil {
		return 0, err
	}
	if kind != checkpoint.KindEvalCache {
		return 0, fmt.Errorf("%s: %w: snapshot kind %d, want %d", path, checkpoint.ErrKind, kind, checkpoint.KindEvalCache)
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > maxCacheEntries {
		return 0, fmt.Errorf("%s: %w: entry count", path, checkpoint.ErrChecksum)
	}
	payload = payload[n:]

	u64 := func() (uint64, bool) {
		if len(payload) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(payload)
		payload = payload[8:]
		return v, true
	}
	f64 := func() (float64, bool) {
		v, ok := u64()
		return math.Float64frombits(v), ok
	}
	entries := make(map[evalKey]float64, count)
	for i := uint64(0); i < count; i++ {
		var k evalKey
		var ok bool
		if k.l, ok = f64(); !ok {
			return 0, truncatedCache(path)
		}
		if k.b, ok = f64(); !ok {
			return 0, truncatedCache(path)
		}
		nn, n := binary.Varint(payload)
		if n <= 0 {
			return 0, truncatedCache(path)
		}
		payload = payload[n:]
		k.n = int(nn)
		if k.rates.PB, ok = f64(); !ok {
			return 0, truncatedCache(path)
		}
		if k.rates.FF, ok = f64(); !ok {
			return 0, truncatedCache(path)
		}
		if k.rates.RW, ok = f64(); !ok {
			return 0, truncatedCache(path)
		}
		mixLen, n := binary.Uvarint(payload)
		if n <= 0 || mixLen > uint64(len(payload[n:])) {
			return 0, truncatedCache(path)
		}
		payload = payload[n:]
		k.mix = string(payload[:mixLen])
		payload = payload[mixLen:]
		v, ok := f64()
		if !ok {
			return 0, truncatedCache(path)
		}
		entries[k] = v
	}
	if len(payload) != 0 {
		return 0, fmt.Errorf("%s: %w: %d trailing bytes", path, checkpoint.ErrChecksum, len(payload))
	}

	e.mu.Lock()
	if e.cache == nil {
		e.cache = make(map[evalKey]float64, len(entries))
	}
	for k, v := range entries {
		if len(e.cache) >= maxCacheEntries {
			break
		}
		// Entries are deterministic in their key, so on collision keeping
		// either value is correct; keep the live one.
		if _, exists := e.cache[k]; !exists {
			e.cache[k] = v
		}
	}
	e.savedAt = len(e.cache)
	e.mu.Unlock()
	return len(entries), nil
}

func truncatedCache(path string) error {
	return fmt.Errorf("%s: %w: cache entry cut short", path, checkpoint.ErrTruncated)
}

// AutoSave arranges for the cache to be re-persisted to path in the
// background whenever roughly `every` entries have been added since the
// last save, so a crash between drains loses at most that much warm-up
// work. every <= 0 disables periodic saving. Not safe to call
// concurrently with evaluations; configure it before serving.
func (e *Evaluator) AutoSave(path string, every int) {
	e.mu.Lock()
	e.autoPath = path
	e.autoEvery = every
	e.savedAt = len(e.cache)
	e.mu.Unlock()
}

// maybeAutoSaveLocked kicks a background save when the growth threshold
// is crossed. Caller holds e.mu. At most one save runs at a time; a
// failed save retries at the next threshold crossing.
func (e *Evaluator) maybeAutoSaveLocked() {
	if e.autoPath == "" || e.autoEvery <= 0 || e.saving || len(e.cache)-e.savedAt < e.autoEvery {
		return
	}
	e.saving = true
	path := e.autoPath
	go func() {
		// SaveCache takes the lock itself to copy entries and advance
		// savedAt; errors are dropped here and surfaced by the drain-time
		// SaveCache, whose caller logs them.
		_, _ = e.SaveCache(path)
		e.mu.Lock()
		e.saving = false
		e.mu.Unlock()
	}()
}
