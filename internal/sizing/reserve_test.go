package sizing

import (
	"errors"
	"math"
	"testing"

	"vodalloc/internal/analytic"
	"vodalloc/internal/dist"
	"vodalloc/internal/sim"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

func reserveCfg(b float64, n int) analytic.Config {
	return analytic.Config{L: 120, B: b, N: n, RatePB: 1, RateFF: 3, RateRW: 3}
}

func TestEstimateDedicatedArithmetic(t *testing.T) {
	profile := workload.MixedProfile(dist.MustGamma(2, 4), dist.MustExponential(15))
	est, err := EstimateDedicated(reserveCfg(60, 30), profile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// g = 15 + 0.2·8 − 0.2·8 = 15 → Λ = 0.5·120/15 = 4 ops/min.
	if math.Abs(est.OpsPerMinute-4) > 1e-9 {
		t.Errorf("ops rate %g want 4", est.OpsPerMinute)
	}
	// Phase-1: 4·(0.2·8/3 + 0.2·8/3) ≈ 4.267 streams.
	if math.Abs(est.Phase1-4*(0.4*8.0/3)) > 1e-9 {
		t.Errorf("phase1 %g", est.Phase1)
	}
	if est.MissHold <= 0 || est.Total != est.Phase1+est.MissHold {
		t.Errorf("components inconsistent: %+v", est)
	}
	// Reservation quantiles grow with z and are at least the mean.
	r0 := est.ReserveFor(0)
	r2 := est.ReserveFor(2)
	if float64(r0) < est.Total || r2 <= r0 {
		t.Errorf("reservations %d, %d around mean %.2f", r0, r2, est.Total)
	}
}

func TestEstimateDedicatedHighHitNeedsLessReserve(t *testing.T) {
	// The paper's core economic claim: raising P(hit) shrinks the
	// required VCR reserve at identical workload.
	profile := workload.MixedProfile(dist.MustGamma(2, 4), dist.MustExponential(15))
	low, err := EstimateDedicated(reserveCfg(20, 50), profile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := EstimateDedicated(reserveCfg(80, 20), profile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(high.Hit > low.Hit) {
		t.Fatalf("hit ordering wrong: %.3f vs %.3f", high.Hit, low.Hit)
	}
	if !(high.Total < low.Total) {
		t.Errorf("high-hit config should need fewer streams: %.2f vs %.2f", high.Total, low.Total)
	}
	if !(high.ReserveFor(2) < low.ReserveFor(2)) {
		t.Errorf("reservation ordering wrong: %d vs %d", high.ReserveFor(2), low.ReserveFor(2))
	}
}

func TestEstimateDedicatedValidatedBySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation runs")
	}
	profile := workload.MixedProfile(dist.MustGamma(2, 4), dist.MustExponential(15))
	for _, tc := range []struct {
		b float64
		n int
	}{{60, 30}, {90, 30}, {24, 12}} {
		cfg := reserveCfg(tc.b, tc.n)
		est, err := EstimateDedicated(cfg, profile, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.New(sim.Config{
			L: cfg.L, B: cfg.B, N: cfg.N,
			Rates:       vcr.Rates{PB: 1, FF: 3, RW: 3},
			ArrivalRate: 0.5,
			Profile:     profile,
			Horizon:     5000,
			Warmup:      500,
			Seed:        9,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(est.Total-res.AvgDedicated) / res.AvgDedicated
		if rel > 0.25 {
			t.Errorf("B=%g n=%d: estimate %.2f vs simulated %.2f (%.0f%% off)",
				tc.b, tc.n, est.Total, res.AvgDedicated, rel*100)
		}
		// The 2σ reservation should cover the simulated peak most of the
		// time; allow generous slack since the peak is an extreme value.
		if float64(res.PeakDedicated) > 2.0*float64(est.ReserveFor(3)) {
			t.Errorf("B=%g n=%d: peak %d dwarfs reservation %d",
				tc.b, tc.n, res.PeakDedicated, est.ReserveFor(3))
		}
	}
}

func TestEstimateDedicatedEdgeCases(t *testing.T) {
	profile := workload.MixedProfile(dist.MustGamma(2, 4), dist.MustExponential(15))
	// Non-interactive profile needs no streams.
	est, err := EstimateDedicated(reserveCfg(60, 30), vcr.Profile{}, 0.5)
	if err != nil || est.Total != 0 {
		t.Errorf("non-interactive: %+v, %v", est, err)
	}
	if est.ReserveFor(2) != 0 {
		t.Error("zero demand needs zero reserve")
	}
	// Invalid arrival rate.
	if _, err := EstimateDedicated(reserveCfg(60, 30), profile, 0); !errors.Is(err, ErrBadParam) {
		t.Error("zero lambda must fail")
	}
	// Invalid config.
	if _, err := EstimateDedicated(analytic.Config{}, profile, 0.5); err == nil {
		t.Error("invalid config must fail")
	}
	// A rewind-only profile with net-negative progress is rejected.
	backwards := vcr.Profile{
		PRW: 1, DurRW: dist.MustDeterministic(30), Think: dist.MustDeterministic(10),
	}
	if _, err := EstimateDedicated(reserveCfg(60, 30), backwards, 0.5); !errors.Is(err, ErrBadParam) {
		t.Errorf("no-progress profile: want ErrBadParam, got %v", err)
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values: B(1, 1) = 0.5; B(2, 1) = 0.2; B(5, 3) ≈ 0.11005.
	if got := ErlangB(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("B(1,1)=%g want 0.5", got)
	}
	if got := ErlangB(2, 1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("B(2,1)=%g want 0.2", got)
	}
	if got := ErlangB(5, 3); math.Abs(got-0.11005) > 1e-4 {
		t.Errorf("B(5,3)=%g want ≈0.11005", got)
	}
	// Edge cases.
	if ErlangB(0, 2) != 1 {
		t.Error("zero servers block everything")
	}
	if ErlangB(4, 0) != 0 {
		t.Error("no load, no blocking")
	}
	if !math.IsNaN(ErlangB(-1, 2)) || !math.IsNaN(ErlangB(2, -1)) {
		t.Error("invalid args should be NaN")
	}
	// Monotonicity: more servers, less blocking; more load, more blocking.
	for c := 1; c < 30; c++ {
		if ErlangB(c+1, 10) >= ErlangB(c, 10) {
			t.Fatalf("blocking not decreasing at c=%d", c)
		}
	}
	if ErlangB(10, 12) <= ErlangB(10, 8) {
		t.Error("blocking not increasing in load")
	}
}

func TestReserveForBlocking(t *testing.T) {
	est := DedicatedEstimate{Total: 30}
	c1, err := est.ReserveForBlocking(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The returned size meets the target and is minimal.
	if ErlangB(c1, 30) > 0.01 || ErlangB(c1-1, 30) <= 0.01 {
		t.Errorf("c=%d not the minimal 1%% reservation for load 30", c1)
	}
	// Tighter targets need more servers.
	c2, err := est.ReserveForBlocking(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if c2 <= c1 {
		t.Errorf("0.1%% target (%d) should exceed 1%% target (%d)", c2, c1)
	}
	if _, err := est.ReserveForBlocking(0); !errors.Is(err, ErrBadParam) {
		t.Error("target 0 must fail")
	}
	if _, err := est.ReserveForBlocking(1); !errors.Is(err, ErrBadParam) {
		t.Error("target 1 must fail")
	}
	zero := DedicatedEstimate{}
	if c, err := zero.ReserveForBlocking(0.01); err != nil || c != 0 {
		t.Errorf("zero load: %d, %v", c, err)
	}
}

func TestErlangBValidatedBySimulatedBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	// Cap the dedicated pool below the offered load and compare the
	// measured rejection fraction with Erlang-B. The simulator retries
	// blocked requests (it is not a pure loss system) and its offered
	// stream-requests are not Poisson, so agreement within a factor of
	// two is the expectation this test pins down.
	profile := workload.MixedProfile(dist.MustGamma(2, 4), dist.MustExponential(15))
	cfg := reserveCfg(24, 12) // low hit rate → heavy dedicated load
	est, err := EstimateDedicated(cfg, profile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cap := int(est.Total * 0.85) // deliberately undersized
	s, err := sim.New(sim.Config{
		L: cfg.L, B: cfg.B, N: cfg.N,
		Rates:        vcr.Rates{PB: 1, FF: 3, RW: 3},
		ArrivalRate:  0.5,
		Profile:      profile,
		Horizon:      6000,
		Warmup:       600,
		Seed:         3,
		MaxDedicated: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	attempts := res.Hits.N() + res.BlockedOps
	if attempts == 0 || res.BlockedOps == 0 {
		t.Fatalf("no contention: attempts=%d blocked=%d", attempts, res.BlockedOps)
	}
	measured := float64(res.BlockedOps+res.BlockedResumes) / float64(attempts+res.BlockedResumes)
	predicted := ErlangB(cap, est.Total)
	ratio := measured / predicted
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("blocking: measured %.4f vs Erlang-B %.4f (ratio %.2f)", measured, predicted, ratio)
	}
}

// TestErlangBAgainstDirectFormula cross-checks the stable recurrence with
// the textbook expression B(c, a) = (a^c/c!) / Σ_{k≤c} a^k/k!.
func TestErlangBAgainstDirectFormula(t *testing.T) {
	direct := func(c int, a float64) float64 {
		term := 1.0 // a^0/0!
		sum := term
		for k := 1; k <= c; k++ {
			term *= a / float64(k)
			sum += term
		}
		return term / sum
	}
	for _, a := range []float64{0.5, 1, 3, 7.5, 20} {
		for c := 0; c <= 40; c++ {
			got := ErlangB(c, a)
			want := direct(c, a)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("B(%d, %g): recurrence %.15g vs direct %.15g", c, a, got, want)
			}
		}
	}
}
