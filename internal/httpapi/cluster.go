package httpapi

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"vodalloc/internal/cluster"
	"vodalloc/internal/sim"
	"vodalloc/internal/sizing"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

// maxClusterNodes bounds one cluster request's node count.
const maxClusterNodes = 64

// maxZipfMovies bounds a generated catalog: sizing is per-movie work.
const maxZipfMovies = 256

// maxNodeDisks bounds the per-node disk count of a churn request.
const maxNodeDisks = 64

// ClusterCounters tallies the cluster endpoints' request counts for
// /statusz, so the new routes are observable from day one. Safe for
// concurrent use.
type ClusterCounters struct {
	plan     atomic.Uint64
	simulate atomic.Uint64
	churn    atomic.Uint64
	// mu guards the last-churn gauges: the most recent successful churn
	// run's headline numbers, surfaced on /statusz so an operator can
	// see what the control plane last did without re-running it.
	mu   sync.Mutex
	last *ChurnLastRun
}

// notePlan and noteSimulate record one request; a nil receiver (the
// bare NewMux, which has no /statusz) drops the count.
func (c *ClusterCounters) notePlan() {
	if c != nil {
		c.plan.Add(1)
	}
}

func (c *ClusterCounters) noteSimulate() {
	if c != nil {
		c.simulate.Add(1)
	}
}

func (c *ClusterCounters) noteChurn() {
	if c != nil {
		c.churn.Add(1)
	}
}

// noteChurnResult publishes a completed churn run's gauges.
func (c *ClusterCounters) noteChurnResult(last ChurnLastRun) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.last = &last
	c.mu.Unlock()
}

// Snapshot returns the current counts.
func (c *ClusterCounters) Snapshot() ClusterStatus {
	if c == nil {
		return ClusterStatus{}
	}
	c.mu.Lock()
	last := c.last
	if last != nil {
		cp := *last
		last = &cp
	}
	c.mu.Unlock()
	return ClusterStatus{
		PlanRequests:     c.plan.Load(),
		SimulateRequests: c.simulate.Load(),
		ChurnRequests:    c.churn.Load(),
		LastChurn:        last,
	}
}

// ClusterStatus is the /statusz view of the cluster endpoints.
type ClusterStatus struct {
	PlanRequests     uint64 `json:"planRequests"`
	SimulateRequests uint64 `json:"simulateRequests"`
	ChurnRequests    uint64 `json:"churnRequests"`
	// LastChurn is the most recent successful churn run (nil before
	// the first one).
	LastChurn *ChurnLastRun `json:"lastChurn,omitempty"`
}

// ChurnLastRun is the /statusz digest of the latest churn simulation.
type ChurnLastRun struct {
	Availability      float64 `json:"availability"`
	FloorAvailability float64 `json:"floorAvailability"`
	MigrationMB       float64 `json:"migrationMB"`
	TimeToConverge    float64 `json:"timeToConverge"`
	PeakLevel         string  `json:"peakLevel"`
	// Quarantines and Hedges carry the gray-resilience counters of the
	// latest run (zero when it ran without gray faults).
	Quarantines uint64 `json:"quarantines"`
	Hedges      uint64 `json:"hedges"`
	// Health-aware control-plane counters of the latest run: completed
	// evacuations off dwelling quarantined nodes, hedges refused by the
	// token bucket, and disk-granular quarantines.
	Evacuations     int    `json:"evacuations"`
	HedgeDenied     uint64 `json:"hedgeDenied"`
	DiskQuarantines uint64 `json:"diskQuarantines"`
}

// ClusterPlanRequest asks for a multi-node placement. The catalog is
// either explicit (movies) or generated (zipfMovies/zipfTheta).
type ClusterPlanRequest struct {
	Movies []workload.MovieSpec `json:"movies,omitempty"`
	// ZipfMovies generates an N-movie Zipf catalog when Movies is
	// empty; ZipfTheta defaults to 0.8.
	ZipfMovies int     `json:"zipfMovies,omitempty"`
	ZipfTheta  float64 `json:"zipfTheta,omitempty"`
	// Nodes is the node count; NodeStreams/NodeBuffer fix each node's
	// (n_s, B_s) budget, or both zero auto-sizes with Headroom slack
	// (default 1.3).
	Nodes       int     `json:"nodes"`
	NodeStreams int     `json:"nodeStreams,omitempty"`
	NodeBuffer  float64 `json:"nodeBuffer,omitempty"`
	Headroom    float64 `json:"headroom,omitempty"`
	// Replicas copies each of the HotMovies most popular movies
	// (0 hot = all, when replicas > 1).
	Replicas  int `json:"replicas,omitempty"`
	HotMovies int `json:"hotMovies,omitempty"`
}

// ClusterAssignmentJSON is one placed movie copy.
type ClusterAssignmentJSON struct {
	Movie   string  `json:"movie"`
	Node    string  `json:"node"`
	Replica int     `json:"replica"`
	N       int     `json:"n"`
	B       float64 `json:"b"`
}

// ClusterNodeJSON is one node's budget and placed load.
type ClusterNodeJSON struct {
	Node       string  `json:"node"`
	MaxStreams int     `json:"maxStreams"`
	MaxBuffer  float64 `json:"maxBuffer"`
	Streams    int     `json:"streams"`
	Buffer     float64 `json:"buffer"`
	Movies     int     `json:"movies"`
}

// ClusterPlanResponse carries the placement.
type ClusterPlanResponse struct {
	Nodes           []ClusterNodeJSON       `json:"nodes"`
	Assignments     []ClusterAssignmentJSON `json:"assignments"`
	TotalStreams    int                     `json:"totalStreams"`
	TotalBuffer     float64                 `json:"totalBuffer"`
	DroppedReplicas int                     `json:"droppedReplicas,omitempty"`
	RefineMoves     int                     `json:"refineMoves,omitempty"`
}

// ClusterSimulateRequest plans and then simulates the cluster.
type ClusterSimulateRequest struct {
	ClusterPlanRequest
	// Lambda is the cluster-wide arrival rate, split by popularity.
	Lambda  float64 `json:"lambda"`
	Horizon float64 `json:"horizon,omitempty"` // default 3000; horizon×nodes capped
	Warmup  float64 `json:"warmup,omitempty"`  // default horizon/10
	Seed    int64   `json:"seed,omitempty"`
	// Fail schedules node outages: "node0@400,node2@500-1500"
	// (permanent without an end time).
	Fail string `json:"fail,omitempty"`
	// Engine selects every node simulation's backend ("des", "fluid" or
	// "hybrid"; empty = des); FluidThreshold is the hybrid popularity
	// cut. Outage-carrying nodes always run DES.
	Engine         string  `json:"engine,omitempty"`
	FluidThreshold float64 `json:"fluidThreshold,omitempty"`
}

// ClusterSimNodeJSON is one node's simulated outcome.
type ClusterSimNodeJSON struct {
	Node         string  `json:"node"`
	Movies       int     `json:"movies"`
	Streams      int     `json:"streams"`
	Buffer       float64 `json:"buffer"`
	Hit          float64 `json:"hit"`
	Availability float64 `json:"availability"`
	DiskFailures uint64  `json:"diskFailures,omitempty"`
	Faulted      bool    `json:"faulted,omitempty"`
}

// ClusterSimMovieJSON is one movie's cluster-level outcome.
type ClusterSimMovieJSON struct {
	Movie        string  `json:"movie"`
	Replicas     int     `json:"replicas"`
	Arrivals     uint64  `json:"arrivals"`
	Routed       uint64  `json:"routed"`
	Shed         uint64  `json:"shed"`
	Failovers    uint64  `json:"failovers"`
	Availability float64 `json:"availability"`
	Hit          float64 `json:"hit"`
}

// ClusterSimulateResponse merges the per-node runs.
type ClusterSimulateResponse struct {
	Hit          float64               `json:"hit"`
	Availability float64               `json:"availability"`
	ShedRate     float64               `json:"shedRate"`
	Rebalances   uint64                `json:"rebalances"`
	Arrivals     uint64                `json:"arrivals"`
	Routed       uint64                `json:"routed"`
	Shed         uint64                `json:"shed"`
	Nodes        []ClusterSimNodeJSON  `json:"nodes"`
	Movies       []ClusterSimMovieJSON `json:"movies"`
}

// ClusterChurnRequest plans the cluster and then drives a time-varying
// workload against it with the live rebalancing controller (or with the
// placement frozen, for a baseline).
type ClusterChurnRequest struct {
	ClusterSimulateRequest
	// Flash schedules flash crowds: "m01@300:4" or
	// "m01@300:4:10:60:30" (movie@at:peak[:ramp[:hold[:decay]]]).
	Flash string `json:"flash,omitempty"`
	// DiurnalPeriod/DiurnalAmp add a sinusoidal rate swing.
	DiurnalPeriod float64 `json:"diurnalPeriod,omitempty"`
	DiurnalAmp    float64 `json:"diurnalAmp,omitempty"`
	// BudgetMB caps total migration traffic (0 = unlimited).
	BudgetMB float64 `json:"budgetMB,omitempty"`
	// Interval is the controller cadence in minutes (0 = default).
	Interval float64 `json:"interval,omitempty"`
	// Frozen disables the controller: the placement never changes.
	Frozen bool `json:"frozen,omitempty"`
	// Window is the availability-floor window in minutes (0 = 60).
	Window float64 `json:"window,omitempty"`
	// Gray schedules gray faults:
	// "slow:node0@300-700:12,brownout:node2@400-800:0.4"
	// (kind:node@start[-end]:factor; kinds slow|jitter|brownout).
	Gray string `json:"gray,omitempty"`
	// Policy picks the routing policy under gray faults:
	// blind|health|hedge (default blind).
	Policy string `json:"policy,omitempty"`
	// StarveWait counts admitted waits above this many minutes as
	// starved (0 = default 8).
	StarveWait float64 `json:"starveWait,omitempty"`
	// EvacuateDwell drains replicas off nodes stuck in Quarantine
	// longer than this many minutes (0 = off; needs the controller).
	EvacuateDwell float64 `json:"evacuateDwell,omitempty"`
	// HedgeBudget caps hedged dispatch with a token bucket of this
	// burst size, refilled at a rate scaled by fleet-wide health
	// (0 = unlimited).
	HedgeBudget float64 `json:"hedgeBudget,omitempty"`
	// DiskHealth tracks health and quarantines at disk granularity.
	DiskHealth bool `json:"diskHealth,omitempty"`
	// NodeDisks gives every planned node this many disks, addressable
	// in gray specs as "slow:node0:d1@..." (0 = 1 disk).
	NodeDisks int `json:"nodeDisks,omitempty"`
}

// ClusterChurnResponse reports the run's availability, typed sheds and
// the controller's activity.
type ClusterChurnResponse struct {
	Arrivals          uint64  `json:"arrivals"`
	Admitted          uint64  `json:"admitted"`
	Availability      float64 `json:"availability"`
	FloorAvailability float64 `json:"floorAvailability"`
	Hit               float64 `json:"hit"`
	ShedNoReplica     uint64  `json:"shedNoReplica"`
	ShedSaturated     uint64  `json:"shedSaturated"`
	ShedDegraded      uint64  `json:"shedDegraded"`
	Failovers         uint64  `json:"failovers"`
	ReplicaAdds       int     `json:"replicaAdds"`
	ReplicaDrops      int     `json:"replicaDrops"`
	MigrationsStarted int     `json:"migrationsStarted"`
	MigrationMB       float64 `json:"migrationMB"`
	BudgetExhausted   bool    `json:"budgetExhausted"`
	PeakLevel         string  `json:"peakLevel"`
	// TimeToConverge is minutes from the last flash's end to controller
	// quiescence (-1 when not measured).
	TimeToConverge float64 `json:"timeToConverge"`
	// Gray-resilience measurements, present only when the run had gray
	// faults or a non-blind routing policy.
	Starved     uint64  `json:"starved,omitempty"`
	WaitP50     float64 `json:"waitP50,omitempty"`
	WaitP99     float64 `json:"waitP99,omitempty"`
	WaitMax     float64 `json:"waitMax,omitempty"`
	Hedges      uint64  `json:"hedges,omitempty"`
	HedgeWins   uint64  `json:"hedgeWins,omitempty"`
	HedgeDenied uint64  `json:"hedgeDenied,omitempty"`
	Probes      uint64  `json:"probes,omitempty"`
	Quarantines uint64  `json:"quarantines,omitempty"`
	Restores    uint64  `json:"restores,omitempty"`
	// Disk-granular health counters (present only with diskHealth).
	DiskQuarantines uint64 `json:"diskQuarantines,omitempty"`
	DiskRestores    uint64 `json:"diskRestores,omitempty"`
	// Evacuations counts replicas the controller drained off nodes that
	// dwelled in quarantine past evacuateDwell; EvacuationsBlocked are
	// drains refused because they would strand a movie.
	Evacuations        int                      `json:"evacuations,omitempty"`
	EvacuationsBlocked int                      `json:"evacuationsBlocked,omitempty"`
	NodeHealth         []cluster.NodeHealthInfo `json:"nodeHealth,omitempty"`
}

// clusterCatalog materializes the request's movie source.
func (r ClusterPlanRequest) clusterCatalog() ([]workload.Movie, error) {
	if len(r.Movies) > 0 {
		return specsToMovies(r.Movies)
	}
	if r.ZipfMovies <= 0 {
		return nil, fmt.Errorf("give movies or zipfMovies")
	}
	if r.ZipfMovies > maxZipfMovies {
		return nil, fmt.Errorf("zipfMovies %d exceeds the service cap %d", r.ZipfMovies, maxZipfMovies)
	}
	theta := r.ZipfTheta
	if theta == 0 {
		theta = 0.8
	}
	return workload.ZipfCatalog(r.ZipfMovies, theta)
}

// clusterPlan sizes the catalog on eval and packs it per the request.
func (r ClusterPlanRequest) clusterPlan(ctx context.Context, eval *sizing.Evaluator) (cluster.Placement, []workload.Movie, error) {
	if r.Nodes < 1 || r.Nodes > maxClusterNodes {
		return cluster.Placement{}, nil, fmt.Errorf("nodes %d outside [1, %d]", r.Nodes, maxClusterNodes)
	}
	movies, err := r.clusterCatalog()
	if err != nil {
		return cluster.Placement{}, nil, err
	}
	allocs, err := cluster.Demands(ctx, eval, movies, sizing.DefaultRates)
	if err != nil {
		return cluster.Placement{}, nil, err
	}
	opts := cluster.Options{Replicas: r.Replicas, HotMovies: r.HotMovies}
	var nodes []cluster.NodeSpec
	switch {
	case r.NodeStreams > 0 && r.NodeBuffer > 0:
		nodes = cluster.UniformNodes(r.Nodes, r.NodeStreams, r.NodeBuffer)
	case r.NodeStreams > 0 || r.NodeBuffer > 0:
		return cluster.Placement{}, nil, fmt.Errorf("give both nodeStreams and nodeBuffer, or neither")
	default:
		nodes = cluster.AutoNodes(r.Nodes, allocs, opts, r.Headroom)
	}
	p, err := cluster.PackAllocs(allocs, nodes, opts)
	if err != nil {
		return cluster.Placement{}, nil, err
	}
	return p, movies, nil
}

func handleClusterPlan(ctx context.Context, eval *sizing.Evaluator, req ClusterPlanRequest) (ClusterPlanResponse, error) {
	p, _, err := req.clusterPlan(ctx, eval)
	if err != nil {
		return ClusterPlanResponse{}, err
	}
	resp := ClusterPlanResponse{
		TotalStreams:    p.TotalStreams,
		TotalBuffer:     p.TotalBuffer,
		DroppedReplicas: p.DroppedReplicas,
		RefineMoves:     p.RefineMoves,
	}
	for _, l := range p.Loads() {
		resp.Nodes = append(resp.Nodes, ClusterNodeJSON{
			Node: l.Node.ID, MaxStreams: l.Node.MaxStreams, MaxBuffer: l.Node.MaxBuffer,
			Streams: l.Streams, Buffer: l.Buffer, Movies: l.Movies,
		})
	}
	for _, a := range p.Assignments {
		resp.Assignments = append(resp.Assignments, ClusterAssignmentJSON{
			Movie: a.Movie, Node: a.Node, Replica: a.Replica, N: a.N, B: a.B,
		})
	}
	return resp, nil
}

func handleClusterSimulate(ctx context.Context, eval *sizing.Evaluator, req ClusterSimulateRequest) (ClusterSimulateResponse, error) {
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 3000
	}
	if req.Nodes > 0 && horizon*float64(req.Nodes) > maxSimHorizon {
		return ClusterSimulateResponse{}, fmt.Errorf("horizon %g × %d nodes exceeds the service cap %d",
			horizon, req.Nodes, maxSimHorizon)
	}
	warmup := req.Warmup
	if warmup == 0 {
		warmup = horizon / 10
	}
	p, movies, err := req.clusterPlan(ctx, eval)
	if err != nil {
		return ClusterSimulateResponse{}, err
	}
	nodeFaults, err := cluster.ParseNodeFaults(req.Fail)
	if err != nil {
		return ClusterSimulateResponse{}, err
	}
	res, err := cluster.Simulate(ctx, cluster.SimConfig{
		Placement:      p,
		Movies:         movies,
		Rates:          vcr.Rates{PB: 1, FF: 3, RW: 3},
		TotalRate:      req.Lambda,
		Horizon:        horizon,
		Warmup:         warmup,
		Seed:           req.Seed,
		Faults:         nodeFaults,
		Engine:         sim.Engine(req.Engine),
		FluidThreshold: req.FluidThreshold,
	})
	if err != nil {
		return ClusterSimulateResponse{}, err
	}
	resp := ClusterSimulateResponse{
		Hit:          res.Hit,
		Availability: res.Availability,
		ShedRate:     res.ShedRate,
		Rebalances:   res.Rebalances,
		Arrivals:     res.Arrivals,
		Routed:       res.Routed,
		Shed:         res.Shed,
	}
	for _, n := range res.Nodes {
		resp.Nodes = append(resp.Nodes, ClusterSimNodeJSON{
			Node: n.Node, Movies: n.Movies, Streams: n.PlacedStreams, Buffer: n.PlacedBuffer,
			Hit: n.Hit, Availability: n.Availability,
			DiskFailures: n.DiskFailures, Faulted: n.Faulted,
		})
	}
	for _, m := range res.Movies {
		resp.Movies = append(resp.Movies, ClusterSimMovieJSON{
			Movie: m.Movie, Replicas: m.Replicas,
			Arrivals: m.Arrivals, Routed: m.Routed, Shed: m.Shed, Failovers: m.Failovers,
			Availability: m.Availability, Hit: m.Hit,
		})
	}
	return resp, nil
}

func handleClusterChurn(ctx context.Context, eval *sizing.Evaluator, cc *ClusterCounters, req ClusterChurnRequest) (ClusterChurnResponse, error) {
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 3000
	}
	if horizon > maxSimHorizon {
		return ClusterChurnResponse{}, fmt.Errorf("horizon %g exceeds the service cap %d", horizon, maxSimHorizon)
	}
	warmup := req.Warmup
	if warmup == 0 {
		warmup = horizon / 10
	}
	p, movies, err := req.clusterPlan(ctx, eval)
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	if req.NodeDisks < 0 || req.NodeDisks > maxNodeDisks {
		return ClusterChurnResponse{}, fmt.Errorf("nodeDisks %d outside [0, %d]", req.NodeDisks, maxNodeDisks)
	}
	if req.NodeDisks > 1 {
		for i := range p.Nodes {
			p.Nodes[i].Disks = req.NodeDisks
		}
	}
	nodeFaults, err := cluster.ParseNodeFaults(req.Fail)
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	flashes, err := workload.ParseFlashCrowds(req.Flash)
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	grayFaults, err := cluster.ParseGrayFaults(req.Gray)
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	policy, err := cluster.ParseRoutePolicy(req.Policy)
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	dyn := workload.DynamicWorkload{
		Movies:   movies,
		BaseRate: req.Lambda,
		Flashes:  flashes,
	}
	if req.DiurnalPeriod > 0 {
		amp := req.DiurnalAmp
		if amp == 0 {
			amp = 0.3
		}
		dyn.Diurnal = &workload.Diurnal{Period: req.DiurnalPeriod, Amplitude: amp}
	}
	res, err := cluster.RunChurn(ctx, cluster.ChurnConfig{
		Placement: p,
		Workload:  dyn,
		Horizon:   horizon,
		Warmup:    warmup,
		Seed:      req.Seed,
		Controller: cluster.ControllerConfig{
			Interval:      req.Interval,
			BudgetBytes:   req.BudgetMB * 1e6,
			EvacuateDwell: req.EvacuateDwell,
		},
		ControllerOff: req.Frozen,
		Faults:        nodeFaults,
		Window:        req.Window,
		Gray:          grayFaults,
		Policy:        policy,
		StarveWait:    req.StarveWait,
		Health: cluster.HealthConfig{
			HedgeBudget: req.HedgeBudget,
			DiskHealth:  req.DiskHealth,
		},
	})
	if err != nil {
		return ClusterChurnResponse{}, err
	}
	cc.noteChurnResult(ChurnLastRun{
		Availability:      res.Availability,
		FloorAvailability: res.FloorAvailability,
		MigrationMB:       res.Controller.SpentBytes / 1e6,
		TimeToConverge:    res.TimeToConverge,
		PeakLevel:         res.Controller.PeakLevel.String(),
		Quarantines:       res.Gray.Quarantines,
		Hedges:            res.Gray.Hedges,
		Evacuations:       res.Controller.EvacuationsCompleted,
		HedgeDenied:       res.Gray.HedgeDenied,
		DiskQuarantines:   res.Gray.DiskQuarantines,
	})
	return ClusterChurnResponse{
		Arrivals:           res.Arrivals,
		Admitted:           res.Admitted,
		Availability:       res.Availability,
		FloorAvailability:  res.FloorAvailability,
		Hit:                res.Hit,
		ShedNoReplica:      res.ShedNoReplica,
		ShedSaturated:      res.ShedSaturated,
		ShedDegraded:       res.ShedDegraded,
		Failovers:          res.Failovers,
		ReplicaAdds:        res.Controller.ReplicaAdds,
		ReplicaDrops:       res.Controller.ReplicaDrops,
		MigrationsStarted:  res.Controller.MigrationsStarted,
		MigrationMB:        res.Controller.SpentBytes / 1e6,
		BudgetExhausted:    res.Controller.BudgetExhausted,
		PeakLevel:          res.Controller.PeakLevel.String(),
		TimeToConverge:     res.TimeToConverge,
		Starved:            res.Starved,
		WaitP50:            res.WaitP50,
		WaitP99:            res.WaitP99,
		WaitMax:            res.WaitMax,
		Hedges:             res.Gray.Hedges,
		HedgeWins:          res.Gray.HedgeWins,
		HedgeDenied:        res.Gray.HedgeDenied,
		Probes:             res.Gray.Probes,
		Quarantines:        res.Gray.Quarantines,
		Restores:           res.Gray.Restores,
		DiskQuarantines:    res.Gray.DiskQuarantines,
		DiskRestores:       res.Gray.DiskRestores,
		Evacuations:        res.Controller.EvacuationsCompleted,
		EvacuationsBlocked: res.Controller.EvacuationsBlocked,
		NodeHealth:         res.NodeHealth,
	}, nil
}
