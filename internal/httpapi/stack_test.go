package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vodalloc/internal/parallel"
	"vodalloc/internal/resilience"
	"vodalloc/internal/sizing"
	"vodalloc/internal/workload"
)

// bigPlanBody builds a /v1/plan request over a catalog large enough that
// the sweep runs for seconds: every movie gets a distinct name and
// length so the evaluator's memo cache cannot short-circuit the work.
func bigPlanBody(t *testing.T, movies int) []byte {
	t.Helper()
	req := PlanRequest{}
	for i := 0; i < movies; i++ {
		req.Movies = append(req.Movies, workload.MovieSpec{
			Name:      fmt.Sprintf("cancel-%03d", i),
			Length:    150 + float64(i),
			Wait:      0.25,
			TargetHit: 0.8,
			Dur:       "gamma:2:4",
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCanceledPlanFreesPool is the PR's acceptance test: a /v1/plan
// canceled at t=50ms against a sweep that would run for seconds must
// stop consuming worker-pool tokens within 100ms of the cancellation.
func TestCanceledPlanFreesPool(t *testing.T) {
	pool := parallel.NewPool(2)
	eval := &sizing.Evaluator{Workers: 2, Pool: pool}
	srv := httptest.NewServer(newMux(maxBodyBytes, nil, nil, eval, nil))
	defer srv.Close()

	body := bigPlanBody(t, 100)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("plan finished before the 50ms cancel (status %d); enlarge the catalog", resp.StatusCode)
	}

	// The client has given up; the server-side sweep must drain its pool
	// tokens within 100ms even though nobody is reading the response.
	deadline := time.Now().Add(100 * time.Millisecond)
	for pool.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still holds %d tokens 100ms after cancellation", pool.InUse())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerTripsAndRecovers drives the breaker middleware through its
// whole cycle with a fake clock: consecutive deadline-expired requests
// trip it, tripped calls fast-fail with the circuit header, and after
// the cooldown a successful probe closes it again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	br := resilience.NewBreaker(2, time.Minute)
	br.Clock = func() time.Time { return now }
	h := breakerGate(br, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	timedOut := func() *http.Request {
		ctx, cancel := context.WithDeadline(context.Background(), now.Add(-time.Second))
		t.Cleanup(cancel)
		return httptest.NewRequest(http.MethodPost, "/v1/simulate", nil).WithContext(ctx)
	}

	// Two deadline-expired requests reach the threshold.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, timedOut())
	}
	if got := br.State(); got != resilience.Open {
		t.Fatalf("breaker %v after threshold failures, want open", got)
	}

	// While open: fast-fail 503 with the circuit marker and a Retry-After.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker returned %d want 503", rec.Code)
	}
	if rec.Header().Get(breakerHeader) != "open" {
		t.Errorf("open-breaker 503 missing %s header", breakerHeader)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("open-breaker 503 missing Retry-After")
	}
	decodeErrorBody(t, rec)

	// After the cooldown a healthy probe closes the circuit.
	now = now.Add(2 * time.Minute)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("half-open probe returned %d want 200", rec.Code)
	}
	if got := br.State(); got != resilience.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}
}

// TestSimulateTimeoutTripsBreaker exercises the failure detector end to
// end: with a tiny request budget and threshold 1, one timed-out
// simulation must flip the circuit so the next call fast-fails.
func TestSimulateTimeoutTripsBreaker(t *testing.T) {
	h := New(Options{Timeout: 20 * time.Millisecond, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	srv := httptest.NewServer(h)
	defer srv.Close()

	slow := `{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":2,"horizon":50000,"seed":1}`
	resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow simulate returned %d want 503 (timeout)", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/simulate", "application/json", strings.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-trip simulate returned %d want 503", resp.StatusCode)
	}
	if resp.Header.Get(breakerHeader) != "open" {
		t.Errorf("post-trip 503 missing %s: open (headers %v)", breakerHeader, resp.Header)
	}
}

// TestHealthEndpointsAndDrain walks the lifecycle the serving binary
// drives: starting (not ready), ready, draining — checking /healthz,
// /readyz, /statusz and the drain shed on API routes at each step.
func TestHealthEndpointsAndDrain(t *testing.T) {
	state := NewState()
	h := New(Options{State: state})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	check := func(path string, want int) {
		t.Helper()
		resp := get(path)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d want %d", path, resp.StatusCode, want)
		}
	}

	// Starting: alive but not ready.
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusServiceUnavailable)

	state.SetReady(true)
	check("/readyz", http.StatusOK)

	resp := get("/statusz")
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	resp.Body.Close()
	if !st.Ready || st.Draining {
		t.Errorf("statusz ready=%v draining=%v want ready, not draining", st.Ready, st.Draining)
	}
	if st.Goroutines <= 0 || st.SimCap <= 0 || st.WorkerCap <= 0 {
		t.Errorf("statusz gauges not populated: %+v", st)
	}
	if st.Inflight != 0 || st.SimInflight != 0 || st.WorkerTokens != 0 {
		t.Errorf("idle server reports nonzero occupancy: %+v", st)
	}
	if st.Breaker != "closed" {
		t.Errorf("statusz breaker %q want closed", st.Breaker)
	}

	// API routes work while ready.
	body := `{"config":{"l":120,"b":60,"n":30},"profile":{}}`
	post, err := http.Post(srv.URL+"/v1/hit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("/v1/hit while ready = %d want 200", post.StatusCode)
	}

	// Draining: probes flip, API sheds cleanly, liveness holds.
	state.BeginDrain()
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusServiceUnavailable)
	post, err = http.Post(srv.URL+"/v1/hit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1/hit during drain = %d want 503", post.StatusCode)
	}
	if post.Header.Get("Retry-After") == "" {
		t.Error("drain 503 missing Retry-After")
	}

	resp = get("/statusz")
	st = StatusResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz decode during drain: %v", err)
	}
	resp.Body.Close()
	if st.Ready || !st.Draining {
		t.Errorf("statusz during drain ready=%v draining=%v", st.Ready, st.Draining)
	}
}

// TestStatuszReportsCacheOutcomes checks that /statusz surfaces the
// evaluator-cache gauges and the persistence outcomes the serving
// binary records around startup load and drain save.
func TestStatuszReportsCacheOutcomes(t *testing.T) {
	eval := &sizing.Evaluator{}
	cache := &CacheState{}
	srv := httptest.NewServer(New(Options{Evaluator: eval, Cache: cache}))
	defer srv.Close()

	statusz := func() StatusResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("statusz decode: %v", err)
		}
		return st
	}

	// Before any persistence event both outcomes read "none".
	st := statusz()
	if st.Cache.Load != "none" || st.Cache.Save != "none" {
		t.Errorf("pre-persistence cache outcomes %+v want none/none", st.Cache)
	}
	if st.Cache.Entries != 0 || st.Cache.Hits != 0 || st.Cache.Misses != 0 {
		t.Errorf("cold evaluator reports cache traffic: %+v", st.Cache)
	}

	cache.RecordLoad(412, nil)
	cache.RecordSave(0, fmt.Errorf("disk full"))
	st = statusz()
	if st.Cache.Load != "loaded 412 entries" {
		t.Errorf("load outcome %q want %q", st.Cache.Load, "loaded 412 entries")
	}
	if st.Cache.Save != "error: disk full" {
		t.Errorf("save outcome %q want %q", st.Cache.Save, "error: disk full")
	}

	// A sizing request must show up in the traffic gauges: the shared
	// evaluator is the one behind the endpoints.
	body := bigPlanBody(t, 1)
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan = %d want 200", resp.StatusCode)
	}
	if st = statusz(); st.Cache.Entries == 0 || st.Cache.Misses == 0 {
		t.Errorf("plan request left no cache traffic: %+v", st.Cache)
	}
}
