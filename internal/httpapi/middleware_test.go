package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vodalloc/internal/resilience"
)

func decodeErrorBody(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not JSON: %v (body %q)", err, rec.Body.String())
	}
	if e.Error == "" {
		t.Fatal("structured error has an empty message")
	}
	return e
}

func TestOversizedBodyGets413(t *testing.T) {
	h := New(Options{MaxBodyBytes: 128})
	body := `{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"pad":"` +
		strings.Repeat("x", 512) + `"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/hit", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d want 413; body %q", rec.Code, rec.Body.String())
	}
	e := decodeErrorBody(t, rec)
	if !strings.Contains(e.Error, "128") {
		t.Errorf("413 error should cite the limit: %q", e.Error)
	}
}

func TestMalformedJSONGets400(t *testing.T) {
	h := New(Options{})
	for _, body := range []string{`{`, `[]`, `{"config": "nope"}`, `{"unknownField": 1}`} {
		req := httptest.NewRequest(http.MethodPost, "/v1/hit", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d want 400", body, rec.Code)
			continue
		}
		decodeErrorBody(t, rec)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	// Through a real server: the connection must survive and carry a 500.
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/hit", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("connection died on handler panic: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d want 500", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("panic response is not a structured error: %v %+v", err, e)
	}
	if resp.Header.Get(recoveredHeader) == "" {
		t.Error("recovered response should be marked for the access log")
	}
}

func TestLimiterShedsWith503AndRetryAfter(t *testing.T) {
	sem := resilience.NewBulkhead(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	h := limitInflight(sem, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(started) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	}()
	<-started // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated limiter returned %d want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	decodeErrorBody(t, rec)

	close(release)
	wg.Wait()

	// The slot is free again: the next request must pass.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("limiter did not release its slot: %d", rec.Code)
	}
}

func TestConcurrentSimulatesSurviveOverload(t *testing.T) {
	// N+1 concurrent simulate calls against an inflight cap of 1: every
	// call must complete with 200 or 503, and the server must stay up.
	h := New(Options{MaxInflightSim: 1})
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := `{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"horizon":600,"seed":1}`
	const calls = 4
	codes := make(chan int, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("concurrent simulate returned %d; want 200 or 503", code)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("server unreachable after overload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after overload", resp.StatusCode)
	}
}

func TestTimeoutCancelsSlowHandlers(t *testing.T) {
	// Compose the same stack New uses, around a stub that outlives the
	// budget; the client must get a 503 within the timeout, not hang.
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
			t.Error("request context never canceled")
		}
	})
	h := Recover(http.TimeoutHandler(slow, 20*time.Millisecond, `{"error":"request timed out"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/simulate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request returned %d want 503", rec.Code)
	}
	decodeErrorBody(t, rec)
}

func TestAccessLogRecordsStatusAndOutcome(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)

	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fine")
	})
	mux.HandleFunc("/shed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("busy"))
	})
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	h := AccessLog(logger, Recover(mux))

	for _, path := range []string{"/ok", "/shed", "/boom"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	got := buf.String()
	for _, want := range []string{
		"GET /ok 200", "ok",
		"GET /shed 503", "shed",
		"GET /boom 500", "recovered-panic",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("access log missing %q:\n%s", want, got)
		}
	}
}

func TestSimulateWithFaultsReportsDegradation(t *testing.T) {
	h := New(Options{})
	body := `{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,` +
		`"horizon":1000,"seed":1,"totalStreams":60,"faults":"fail@300:d0"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp SimulateResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Faults == nil {
		t.Fatal("faulted run returned no fault summary")
	}
	if resp.Faults.DiskFailures != 1 {
		t.Errorf("diskFailures %d want 1", resp.Faults.DiskFailures)
	}
	if resp.Faults.Availability >= 1 || resp.Faults.Availability <= 0 {
		t.Errorf("availability %v not in (0, 1)", resp.Faults.Availability)
	}
}

func TestSimulateRejectsBadFaultSpec(t *testing.T) {
	h := New(Options{})
	body := `{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"faults":"explode@oops"}`
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d want 400: %s", rec.Code, rec.Body.String())
	}
	e := decodeErrorBody(t, rec)
	if !strings.Contains(e.Error, "faults") {
		t.Errorf("error should mention faults: %q", e.Error)
	}
}
