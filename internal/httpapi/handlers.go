package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"

	"vodalloc/internal/analytic"
	"vodalloc/internal/dist"
	"vodalloc/internal/faults"
	"vodalloc/internal/resilience"
	"vodalloc/internal/sim"
	"vodalloc/internal/sizing"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

// maxSimHorizon bounds simulation requests so one call cannot pin the
// server arbitrarily long.
const maxSimHorizon = 50000

// maxBodyBytes bounds request bodies.
const maxBodyBytes = 1 << 20

// maxStreamsPerMovie bounds n in service requests; the model's cost is
// linear in n and nothing physical exceeds this.
const maxStreamsPerMovie = 1 << 20

// NewMux returns the service's routing table with default limits and no
// load shedding; New composes the hardened stack around it. Sizing
// endpoints get a fresh evaluator (per-mux memo cache, all CPUs).
func NewMux() *http.ServeMux {
	return newMux(maxBodyBytes, nil, nil, &sizing.Evaluator{}, nil)
}

// newMux builds the routing table with a body limit, an evaluator for
// the sizing endpoints and, when gate/br are non-nil, a bulkhead and a
// circuit breaker on the simulation endpoints. Concurrent plan/curve
// requests share the evaluator's worker pool and memo cache, so load
// fans out across at most the configured budget regardless of request
// count.
func newMux(maxBody int64, gate *resilience.Bulkhead, br *resilience.Breaker, eval *sizing.Evaluator, cc *ClusterCounters) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", handleHealth)
	mux.Handle("/v1/hit", jsonHandler(maxBody, handleHit))
	mux.Handle("/v1/plan", jsonHandler(maxBody, func(ctx context.Context, req PlanRequest) (PlanResponse, error) {
		return handlePlan(ctx, eval, req)
	}))
	mux.Handle("/v1/curve", jsonHandler(maxBody, func(ctx context.Context, req CurveRequest) (CurveResponse, error) {
		return handleCurve(ctx, eval, req)
	}))
	mux.Handle("/v1/reserve", jsonHandler(maxBody, handleReserve))
	mux.Handle("/v1/cluster/plan", jsonHandler(maxBody, func(ctx context.Context, req ClusterPlanRequest) (ClusterPlanResponse, error) {
		cc.notePlan()
		return handleClusterPlan(ctx, eval, req)
	}))
	var simulate http.Handler = jsonHandler(maxBody, handleSimulate)
	var replicate http.Handler = jsonHandler(maxBody, handleReplicate)
	// Cluster simulation fans a Monte Carlo run out per node, so it
	// shares the simulation endpoints' admission control.
	var clusterSim http.Handler = jsonHandler(maxBody, func(ctx context.Context, req ClusterSimulateRequest) (ClusterSimulateResponse, error) {
		cc.noteSimulate()
		return handleClusterSimulate(ctx, eval, req)
	})
	// Churn drives a full control-plane simulation, so it shares the
	// same admission control as the other simulation endpoints.
	var clusterChurn http.Handler = jsonHandler(maxBody, func(ctx context.Context, req ClusterChurnRequest) (ClusterChurnResponse, error) {
		cc.noteChurn()
		return handleClusterChurn(ctx, eval, cc, req)
	})
	// The breaker sits outside the bulkhead so an open circuit fast-fails
	// without consuming an admission slot.
	if gate != nil {
		simulate = limitInflight(gate, simulate)
		replicate = limitInflight(gate, replicate)
		clusterSim = limitInflight(gate, clusterSim)
		clusterChurn = limitInflight(gate, clusterChurn)
	}
	if br != nil {
		simulate = breakerGate(br, simulate)
		replicate = breakerGate(br, replicate)
		clusterSim = breakerGate(br, clusterSim)
		clusterChurn = breakerGate(br, clusterChurn)
	}
	mux.Handle("/v1/simulate", simulate)
	mux.Handle("/v1/replicate", replicate)
	mux.Handle("/v1/cluster/simulate", clusterSim)
	mux.Handle("/v1/cluster/churn", clusterChurn)
	return mux
}

// maxReplications bounds one replication request.
const maxReplications = 64

func handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// jsonHandler adapts a typed POST handler. fn receives the request
// context; a fn error that reflects the context's own cancellation gets
// no response body — on timeout http.TimeoutHandler already wrote the
// 503, and on client cancellation nobody is listening — while every
// other error is the caller's fault and maps to 400.
func jsonHandler[Req any, Resp any](maxBody int64, fn func(ctx context.Context, req Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %v", err))
			return
		}
		resp, err := fn(r.Context(), req)
		if err != nil {
			if r.Context().Err() != nil &&
				(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// toConfig materializes a ConfigJSON with paper-default rates.
func (c ConfigJSON) toConfig() (analytic.Config, error) {
	if c.N > maxStreamsPerMovie {
		return analytic.Config{}, fmt.Errorf("n=%d exceeds the service cap %d", c.N, maxStreamsPerMovie)
	}
	cfg := analytic.Config{
		L: c.L, B: c.B, N: c.N,
		RatePB: c.RatePB, RateFF: c.RateFF, RateRW: c.RateRW,
	}
	if cfg.RatePB == 0 {
		cfg.RatePB = 1
	}
	if cfg.RateFF == 0 {
		cfg.RateFF = 3 * cfg.RatePB
	}
	if cfg.RateRW == 0 {
		cfg.RateRW = 3 * cfg.RatePB
	}
	return cfg, cfg.Validate()
}

// toProfile materializes a ProfileJSON with paper defaults.
func (p ProfileJSON) toProfile() (vcr.Profile, error) {
	parse := func(spec, fallback string) (dist.Distribution, error) {
		if spec == "" {
			spec = fallback
		}
		if spec == "" {
			return nil, nil
		}
		return dist.Parse(spec)
	}
	durDefault := p.Dur
	if durDefault == "" {
		durDefault = "gamma:2:4"
	}
	durFF, err := parse(p.DurFF, durDefault)
	if err != nil {
		return vcr.Profile{}, err
	}
	durRW, err := parse(p.DurRW, durDefault)
	if err != nil {
		return vcr.Profile{}, err
	}
	durPAU, err := parse(p.DurPAU, durDefault)
	if err != nil {
		return vcr.Profile{}, err
	}
	think, err := parse(p.Think, "exp:15")
	if err != nil {
		return vcr.Profile{}, err
	}
	pff, prw, ppau := p.PFF, p.PRW, p.PPAU
	if pff == 0 && prw == 0 && ppau == 0 {
		pff, prw, ppau = 0.2, 0.2, 0.6
	}
	profile := vcr.Profile{
		PFF: pff, PRW: prw, PPAU: ppau,
		DurFF: durFF, DurRW: durRW, DurPAU: durPAU,
		Think: think,
	}
	return profile, profile.Validate()
}

func specsToMovies(specs []workload.MovieSpec) ([]workload.Movie, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("no movies in request")
	}
	movies := make([]workload.Movie, 0, len(specs))
	for _, s := range specs {
		m, err := s.ToMovie()
		if err != nil {
			return nil, err
		}
		movies = append(movies, m)
	}
	return movies, nil
}

func handleHit(ctx context.Context, req HitRequest) (HitResponse, error) {
	cfg, err := req.Config.toConfig()
	if err != nil {
		return HitResponse{}, err
	}
	profile, err := req.Profile.toProfile()
	if err != nil {
		return HitResponse{}, err
	}
	model, err := analytic.New(cfg)
	if err != nil {
		return HitResponse{}, err
	}
	resp := HitResponse{Wait: cfg.Wait()}
	if resp.HitFF, err = model.HitFFCtx(ctx, profile.DurFF); err != nil {
		return HitResponse{}, err
	}
	if resp.HitRW, err = model.HitRWCtx(ctx, profile.DurRW); err != nil {
		return HitResponse{}, err
	}
	if resp.HitPAU, err = model.HitPAUCtx(ctx, profile.DurPAU); err != nil {
		return HitResponse{}, err
	}
	resp.Hit, err = model.HitMixCtx(ctx, sizing.MixFromProfile(profile))
	if err != nil {
		return HitResponse{}, err
	}
	if req.Breakdown {
		resp.Breakdowns = map[string]BreakdownJSON{}
		for op, d := range map[analytic.Op]dist.Distribution{
			analytic.FF: profile.DurFF, analytic.RW: profile.DurRW, analytic.PAU: profile.DurPAU,
		} {
			bd := model.BreakdownOf(op, d)
			resp.Breakdowns[op.String()] = BreakdownJSON{
				Within: bd.Within, Jumps: bd.Jumps, End: bd.End, Total: bd.Total,
			}
		}
	}
	return resp, nil
}

func handlePlan(ctx context.Context, eval *sizing.Evaluator, req PlanRequest) (PlanResponse, error) {
	movies, err := specsToMovies(req.Movies)
	if err != nil {
		return PlanResponse{}, err
	}
	plan, err := eval.MinBufferPlanCtx(ctx, movies, sizing.DefaultRates, req.MaxStreams, req.MaxBuffer)
	if err != nil {
		return PlanResponse{}, err
	}
	resp := PlanResponse{
		TotalStreams: plan.TotalStreams,
		TotalBuffer:  plan.TotalBuffer,
		PureBatching: sizing.PureBatchingStreams(movies),
	}
	for _, a := range plan.Allocs {
		resp.Allocs = append(resp.Allocs, AllocJSON{
			Movie: a.Movie, N: a.N, B: a.B, Hit: a.Hit, Wait: a.Wait,
		})
	}
	return resp, nil
}

func handleCurve(ctx context.Context, eval *sizing.Evaluator, req CurveRequest) (CurveResponse, error) {
	movies, err := specsToMovies(req.Movies)
	if err != nil {
		return CurveResponse{}, err
	}
	maxPts := req.MaxPoints
	if maxPts == 0 {
		maxPts = 100
	}
	pts, err := eval.CostCurveCtx(ctx, movies, sizing.DefaultRates, req.Phi, maxPts)
	if err != nil {
		return CurveResponse{}, err
	}
	min, err := sizing.MinCostPoint(pts)
	if err != nil {
		return CurveResponse{}, err
	}
	resp := CurveResponse{Min: curvePoint(min)}
	for _, p := range pts {
		resp.Points = append(resp.Points, curvePoint(p))
	}
	return resp, nil
}

func curvePoint(p sizing.CurvePoint) CurvePointJSON {
	return CurvePointJSON{
		TotalStreams: p.TotalStreams,
		TotalBuffer:  p.TotalBuffer,
		RelativeCost: p.RelativeCost,
	}
}

func handleReserve(ctx context.Context, req ReserveRequest) (ReserveResponse, error) {
	if err := ctx.Err(); err != nil {
		return ReserveResponse{}, err
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		return ReserveResponse{}, err
	}
	profile, err := req.Profile.toProfile()
	if err != nil {
		return ReserveResponse{}, err
	}
	est, err := sizing.EstimateDedicated(cfg, profile, req.Lambda)
	if err != nil {
		return ReserveResponse{}, err
	}
	z := req.Z
	if z == 0 {
		z = 2
	}
	return ReserveResponse{
		Hit:          est.Hit,
		OpsPerMinute: est.OpsPerMinute,
		Phase1:       est.Phase1,
		MissHold:     est.MissHold,
		Total:        est.Total,
		Reserve:      est.ReserveFor(z),
	}, nil
}

// parseFaults turns a request's fault spec into a schedule. "rand:"
// specs draw a seeded random schedule over the horizon.
func parseFaults(spec string, horizon float64) (faults.Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "rand:") {
		return faults.ParseRandom(spec, horizon)
	}
	return faults.Parse(spec)
}

func faultSummary(fs sim.FaultStats) *FaultSummaryJSON {
	if !fs.Any() {
		return nil
	}
	return &FaultSummaryJSON{
		Availability:     fs.Availability,
		DegradedFraction: fs.DegradedFraction,
		ShedRate:         fs.ShedRate,
		ForcedMissRate:   fs.ForcedMissRate,
		DiskFailures:     fs.DiskFailures,
		DiskRepairs:      fs.DiskRepairs,
		PartitionsLost:   fs.PartitionsLost,
		Preempted:        fs.Preempted,
		Shed:             fs.Shed,
		ForcedMisses:     fs.ForcedMisses,
		Recovered:        fs.Recovered,
	}
}

func handleSimulate(ctx context.Context, req SimulateRequest) (SimulateResponse, error) {
	cfg, err := req.Config.toConfig()
	if err != nil {
		return SimulateResponse{}, err
	}
	profile, err := req.Profile.toProfile()
	if err != nil {
		return SimulateResponse{}, err
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 3000
	}
	if horizon > maxSimHorizon {
		return SimulateResponse{}, fmt.Errorf("horizon %g exceeds the service cap %d", horizon, maxSimHorizon)
	}
	warmup := req.Warmup
	if warmup == 0 {
		warmup = horizon / 10
	}
	sched, err := parseFaults(req.Faults, horizon)
	if err != nil {
		return SimulateResponse{}, err
	}
	s, err := sim.New(sim.Config{
		L: cfg.L, B: cfg.B, N: cfg.N,
		Rates:          vcr.Rates{PB: cfg.RatePB, FF: cfg.RateFF, RW: cfg.RateRW},
		ArrivalRate:    req.Lambda,
		Profile:        profile,
		Horizon:        horizon,
		Warmup:         warmup,
		Seed:           req.Seed,
		Piggyback:      req.Piggyback,
		Slew:           req.Slew,
		TotalStreams:   req.TotalStreams,
		Faults:         sched,
		Engine:         sim.Engine(req.Engine),
		FluidThreshold: req.FluidThreshold,
		ParticleRate:   req.ParticleRate,
	})
	if err != nil {
		return SimulateResponse{}, err
	}
	res, err := s.RunCtx(ctx)
	if err != nil {
		return SimulateResponse{}, err
	}
	model, err := analytic.New(cfg)
	if err != nil {
		return SimulateResponse{}, err
	}
	modelHit, err := model.HitMixCtx(ctx, sizing.MixFromProfile(profile))
	if err != nil {
		return SimulateResponse{}, err
	}
	lo, hi := res.Hits.Wilson95()
	resp := SimulateResponse{
		Hit:            res.HitProbability(),
		HitCI:          [2]float64{lo, hi},
		Resumes:        res.Hits.N(),
		HitByKind:      map[string]float64{},
		MeanWait:       res.Waits.Mean(),
		MaxWait:        res.MaxWait,
		AvgDedicated:   res.AvgDedicated,
		PeakDedicated:  res.PeakDedicated,
		AvgBatch:       res.AvgBatch,
		Arrivals:       res.Arrivals,
		Departures:     res.Departures,
		Merges:         res.Merges,
		ModelHit:       modelHit,
		ModelAgreement: math.Abs(modelHit - res.HitProbability()),
		Faults:         faultSummary(res.Faults),
	}
	for k, p := range res.HitsByKind {
		if p.N() > 0 {
			resp.HitByKind[k.String()] = p.Estimate()
		}
	}
	return resp, nil
}

func handleReplicate(ctx context.Context, req ReplicateRequest) (ReplicateResponse, error) {
	if req.Replications < 2 || req.Replications > maxReplications {
		return ReplicateResponse{}, fmt.Errorf("replications %d outside [2, %d]", req.Replications, maxReplications)
	}
	cfg, err := req.Config.toConfig()
	if err != nil {
		return ReplicateResponse{}, err
	}
	profile, err := req.Profile.toProfile()
	if err != nil {
		return ReplicateResponse{}, err
	}
	horizon := req.Horizon
	if horizon == 0 {
		horizon = 3000
	}
	if horizon*float64(req.Replications) > maxSimHorizon {
		return ReplicateResponse{}, fmt.Errorf("replications × horizon %g exceeds the service cap %d",
			horizon*float64(req.Replications), maxSimHorizon)
	}
	warmup := req.Warmup
	if warmup == 0 {
		warmup = horizon / 10
	}
	sched, err := parseFaults(req.Faults, horizon)
	if err != nil {
		return ReplicateResponse{}, err
	}
	rep, err := sim.ReplicateCtx(ctx, sim.Config{
		L: cfg.L, B: cfg.B, N: cfg.N,
		Rates:          vcr.Rates{PB: cfg.RatePB, FF: cfg.RateFF, RW: cfg.RateRW},
		ArrivalRate:    req.Lambda,
		Profile:        profile,
		Horizon:        horizon,
		Warmup:         warmup,
		Seed:           req.Seed,
		Piggyback:      req.Piggyback,
		Slew:           req.Slew,
		TotalStreams:   req.TotalStreams,
		Faults:         sched,
		Engine:         sim.Engine(req.Engine),
		FluidThreshold: req.FluidThreshold,
		ParticleRate:   req.ParticleRate,
	}, req.Replications)
	if err != nil {
		return ReplicateResponse{}, err
	}
	model, err := analytic.New(cfg)
	if err != nil {
		return ReplicateResponse{}, err
	}
	modelHit, err := model.HitMixCtx(ctx, sizing.MixFromProfile(profile))
	if err != nil {
		return ReplicateResponse{}, err
	}
	return ReplicateResponse{
		PooledHit:    rep.HitProbability(),
		PooledTrials: rep.PooledHits.N(),
		PerRun:       rep.PerRun,
		CI95:         rep.HitCI95(),
		AvgDedicated: rep.AvgDedicated.Mean(),
		AvgBatch:     rep.AvgBatch.Mean(),
		MaxWait:      rep.MaxWait,
		ModelHit:     modelHit,
	}, nil
}
