package httpapi

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewMux())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	// Wrong method.
	r2, body := postJSON(t, srv, "/v1/healthz", "{}")
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz: %d %s", r2.StatusCode, body)
	}
}

func TestHitEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/hit", `{
		"config": {"l": 120, "b": 60, "n": 30},
		"profile": {"dur": "gamma:2:4"},
		"breakdown": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out HitResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Cross-checked against the model's known values for this config.
	if math.Abs(out.HitFF-0.5137) > 0.001 || math.Abs(out.HitPAU-0.4903) > 0.001 {
		t.Errorf("hit values %+v", out)
	}
	if math.Abs(out.Hit-(0.2*out.HitFF+0.2*out.HitRW+0.6*out.HitPAU)) > 1e-9 {
		t.Error("mix inconsistent")
	}
	if out.Wait != 2 {
		t.Errorf("wait %g want 2", out.Wait)
	}
	if len(out.Breakdowns) != 3 {
		t.Errorf("breakdowns %v", out.Breakdowns)
	}
	if bd := out.Breakdowns["FF"]; math.Abs(bd.Total-out.HitFF) > 1e-6 {
		t.Error("FF breakdown total mismatch")
	}
}

func TestHitEndpointValidation(t *testing.T) {
	srv := newServer(t)
	cases := []string{
		`{"config": {"l": 0, "b": 60, "n": 30}}`,
		`{"config": {"l": 120, "b": 200, "n": 30}}`,
		`{"config": {"l": 120, "b": 60, "n": 30}, "profile": {"dur": "bogus:1"}}`,
		`{"config": {"l": 120, "b": 60, "n": 30}, "unknown": 1}`,
		`not json`,
	}
	for i, body := range cases {
		resp, out := postJSON(t, srv, "/v1/hit", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s)", i, resp.StatusCode, out)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("case %d: error body %q", i, out)
		}
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/hit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/hit: %d", resp.StatusCode)
	}
}

func TestPlanEndpointExample1(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/plan", `{
		"movies": [
			{"name": "movie1", "length": 75, "wait": 0.1, "targetHit": 0.5, "dur": "gamma:2:4"},
			{"name": "movie2", "length": 60, "wait": 0.5, "targetHit": 0.5, "dur": "exp:5"},
			{"name": "movie3", "length": 90, "wait": 0.25, "targetHit": 0.5, "dur": "exp:2"}
		]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out PlanResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.PureBatching != 1230 {
		t.Errorf("pure batching %d want 1230", out.PureBatching)
	}
	if len(out.Allocs) != 3 || out.TotalStreams >= 1230 {
		t.Errorf("plan %+v", out)
	}
	// Movie 2 matches the paper exactly.
	for _, a := range out.Allocs {
		if a.Movie == "movie2" && (a.N != 60 || math.Abs(a.B-30) > 1e-9) {
			t.Errorf("movie2 allocation %+v want (30, 60)", a)
		}
	}
	// Infeasible request surfaces as 400.
	resp, body = postJSON(t, srv, "/v1/plan", `{
		"movies": [{"name": "m", "length": 60, "wait": 30, "targetHit": 0.99, "dur": "exp:500", "ppau": 1}]
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("infeasible plan: %d %s", resp.StatusCode, body)
	}
	// Empty catalog.
	resp, _ = postJSON(t, srv, "/v1/plan", `{"movies": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("empty catalog should 400")
	}
}

func TestCurveEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/curve", `{
		"movies": [{"name": "m", "length": 60, "wait": 0.5, "targetHit": 0.5, "dur": "exp:5"}],
		"phi": 11, "maxPoints": 20
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CurveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) < 2 || out.Min.RelativeCost <= 0 {
		t.Errorf("curve %+v", out)
	}
	// phi=0 rejected.
	resp, _ = postJSON(t, srv, "/v1/curve", `{
		"movies": [{"name": "m", "length": 60, "wait": 0.5, "targetHit": 0.5, "dur": "exp:5"}],
		"phi": 0
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("phi=0 should 400")
	}
}

func TestReserveEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/reserve", `{
		"config": {"l": 120, "b": 60, "n": 30},
		"profile": {"dur": "gamma:2:4", "think": "exp:15"},
		"lambda": 0.5
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ReserveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.OpsPerMinute-4) > 1e-9 {
		t.Errorf("ops %g want 4", out.OpsPerMinute)
	}
	if out.Reserve <= int(out.Total) {
		t.Errorf("reserve %d should exceed mean %.1f", out.Reserve, out.Total)
	}
	resp, _ = postJSON(t, srv, "/v1/reserve", `{"config": {"l":120,"b":60,"n":30}, "lambda": 0}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("lambda=0 should 400")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/simulate", `{
		"config": {"l": 120, "b": 60, "n": 30},
		"profile": {"dur": "gamma:2:4"},
		"lambda": 0.5,
		"horizon": 2000,
		"seed": 7
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SimulateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Resumes == 0 || out.Hit <= 0 || out.Hit >= 1 {
		t.Errorf("sim result %+v", out)
	}
	if out.HitCI[0] > out.Hit || out.HitCI[1] < out.Hit {
		t.Error("CI does not bracket the estimate")
	}
	if out.ModelAgreement > 0.05 {
		t.Errorf("model disagreement %.4f", out.ModelAgreement)
	}
	if out.MaxWait > 2.0001 {
		t.Errorf("max wait %g exceeds w=2", out.MaxWait)
	}
	// Horizon cap.
	resp, _ = postJSON(t, srv, "/v1/simulate", `{
		"config": {"l": 120, "b": 60, "n": 30}, "lambda": 0.5, "horizon": 1000000
	}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Error("over-cap horizon should 400")
	}
}

func TestDeterministicSimulateAcrossCalls(t *testing.T) {
	srv := newServer(t)
	body := `{"config": {"l":120,"b":60,"n":30}, "lambda": 0.5, "horizon": 1000, "seed": 3}`
	_, a := postJSON(t, srv, "/v1/simulate", body)
	_, b := postJSON(t, srv, "/v1/simulate", body)
	if !bytes.Equal(a, b) {
		t.Error("same-seed simulate responses differ")
	}
}

// FuzzHitEndpoint throws arbitrary JSON at the /v1/hit handler: it must
// never panic or return 5xx — only 200 for valid requests and 400 for
// invalid ones.
func FuzzHitEndpoint(f *testing.F) {
	seeds := []string{
		`{"config":{"l":120,"b":60,"n":30},"profile":{"dur":"gamma:2:4"}}`,
		`{"config":{"l":-1}}`,
		`{}`,
		`{"config":{"l":1e308,"b":1e308,"n":2147483647}}`,
		`{"config":{"l":120,"b":60,"n":30},"profile":{"dur":"pareto:0:0"}}`,
		`null`,
		`[1,2,3]`,
		`{"config":{"l":0.0001,"b":0.00009,"n":1}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	mux := NewMux()
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/hit", strings.NewReader(body))
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d for body %q", rec.Code, body)
		}
		if rec.Code == http.StatusOK {
			var out HitResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("undecodable 200 body: %v", err)
			}
			for name, p := range map[string]float64{"ff": out.HitFF, "rw": out.HitRW, "pau": out.HitPAU} {
				if math.IsNaN(p) || p < 0 || p > 1 {
					t.Fatalf("%s=%v outside [0,1] for %q", name, p, body)
				}
			}
		}
	})
}

func TestReplicateEndpoint(t *testing.T) {
	srv := newServer(t)
	resp, body := postJSON(t, srv, "/v1/replicate", `{
		"config": {"l": 120, "b": 60, "n": 30},
		"profile": {"dur": "gamma:2:4"},
		"lambda": 0.5,
		"horizon": 800,
		"replications": 4,
		"seed": 5
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ReplicateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.PerRun) != 4 || out.PooledTrials == 0 {
		t.Errorf("replicate result %+v", out)
	}
	if out.CI95 <= 0 || math.IsInf(out.CI95, 1) {
		t.Errorf("ci %g", out.CI95)
	}
	if math.Abs(out.PooledHit-out.ModelHit) > 0.05 {
		t.Errorf("pooled %g far from model %g", out.PooledHit, out.ModelHit)
	}
	// Bounds enforced.
	for _, bad := range []string{
		`{"config":{"l":120,"b":60,"n":30},"lambda":0.5,"replications":1}`,
		`{"config":{"l":120,"b":60,"n":30},"lambda":0.5,"replications":200}`,
		`{"config":{"l":120,"b":60,"n":30},"lambda":0.5,"replications":10,"horizon":40000}`,
	} {
		resp, _ := postJSON(t, srv, "/v1/replicate", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", bad, resp.StatusCode)
		}
	}
}
