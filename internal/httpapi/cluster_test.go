package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// clusterServer runs the full hardened stack so /statusz is present and
// the cluster counters are live.
func clusterServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(Options{Workers: 2}))
	t.Cleanup(srv.Close)
	return srv
}

func getStatus(t *testing.T, srv *httptest.Server) StatusResponse {
	t.Helper()
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestClusterPlanEndpoint(t *testing.T) {
	srv := clusterServer(t)
	resp, body := postJSON(t, srv, "/v1/cluster/plan", `{
		"zipfMovies": 4, "zipfTheta": 0.8,
		"nodes": 2, "replicas": 2, "hotMovies": 1
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var plan ClusterPlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(plan.Nodes) != 2 {
		t.Errorf("got %d nodes, want 2", len(plan.Nodes))
	}
	// 4 movies + 1 extra copy of the hot one.
	if len(plan.Assignments) != 5 {
		t.Errorf("got %d assignments, want 5: %+v", len(plan.Assignments), plan.Assignments)
	}
	placed := map[string]bool{}
	for _, a := range plan.Assignments {
		if a.N <= 0 || a.B <= 0 {
			t.Errorf("assignment %+v has empty allocation", a)
		}
		placed[a.Movie] = true
	}
	if len(placed) != 4 {
		t.Errorf("placed %d distinct movies, want 4", len(placed))
	}
	if plan.TotalStreams <= 0 || plan.TotalBuffer <= 0 {
		t.Errorf("empty totals: %+v", plan)
	}
}

func TestClusterSimulateEndpoint(t *testing.T) {
	srv := clusterServer(t)
	resp, body := postJSON(t, srv, "/v1/cluster/simulate", `{
		"zipfMovies": 3, "nodes": 2, "replicas": 2, "hotMovies": 1,
		"lambda": 1.0, "horizon": 600, "warmup": 60, "seed": 7,
		"fail": "node1@200"
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sim ClusterSimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sim.Nodes) != 2 || len(sim.Movies) != 3 {
		t.Fatalf("got %d nodes %d movies, want 2 and 3", len(sim.Nodes), len(sim.Movies))
	}
	if sim.Arrivals == 0 {
		t.Error("no arrivals simulated")
	}
	if sim.Hit < 0 || sim.Hit > 1 || sim.Availability < 0 || sim.Availability > 1 {
		t.Errorf("estimates outside [0,1]: %+v", sim)
	}
	faulted := false
	for _, n := range sim.Nodes {
		if n.Node == "node1" && n.Faulted {
			faulted = true
		}
	}
	if !faulted {
		t.Errorf("node1 not marked faulted: %+v", sim.Nodes)
	}
}

func TestClusterChurnEndpoint(t *testing.T) {
	srv := clusterServer(t)
	resp, body := postJSON(t, srv, "/v1/cluster/churn", `{
		"zipfMovies": 3, "nodes": 2, "replicas": 2, "hotMovies": 1,
		"lambda": 0.5, "horizon": 600, "warmup": 60, "seed": 7,
		"flash": "m01@200:3", "budgetMB": 20000, "interval": 10
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var churn ClusterChurnResponse
	if err := json.Unmarshal(body, &churn); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if churn.Arrivals == 0 {
		t.Error("no arrivals simulated")
	}
	if churn.Admitted+churn.ShedNoReplica+churn.ShedSaturated+churn.ShedDegraded != churn.Arrivals {
		t.Errorf("arrivals do not partition into admitted+sheds: %+v", churn)
	}
	if churn.Availability < 0 || churn.Availability > 1 ||
		churn.FloorAvailability < 0 || churn.FloorAvailability > churn.Availability {
		t.Errorf("availability out of range: %+v", churn)
	}
	if churn.MigrationMB*1e6 > 20000e6 {
		t.Errorf("migration traffic exceeds the requested budget: %+v", churn)
	}
	if churn.PeakLevel == "" {
		t.Errorf("missing peak degradation level: %+v", churn)
	}

	// A frozen run on the same scenario must show no controller activity.
	resp, body = postJSON(t, srv, "/v1/cluster/churn", `{
		"zipfMovies": 3, "nodes": 2, "replicas": 2, "hotMovies": 1,
		"lambda": 0.5, "horizon": 600, "warmup": 60, "seed": 7,
		"flash": "m01@200:3", "frozen": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frozen run status %d: %s", resp.StatusCode, body)
	}
	var frozen ClusterChurnResponse
	if err := json.Unmarshal(body, &frozen); err != nil {
		t.Fatalf("decode frozen: %v", err)
	}
	if frozen.ReplicaAdds != 0 || frozen.MigrationsStarted != 0 || frozen.MigrationMB != 0 {
		t.Errorf("frozen run shows controller activity: %+v", frozen)
	}
}

func TestClusterChurnErrors(t *testing.T) {
	srv := clusterServer(t)
	cases := []struct {
		name, body string
	}{
		{"bad flash spec", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "flash": "bogus"}`},
		{"unknown flash movie", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "flash": "m99@100:4"}`},
		{"horizon cap", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 60000}`},
		{"zero lambda", `{"zipfMovies": 3, "nodes": 2, "horizon": 500}`},
		{"bad fail spec", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "fail": "bogus"}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv, "/v1/cluster/churn", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, body)
		}
	}
}

func TestStatuszReportsLastChurn(t *testing.T) {
	srv := clusterServer(t)
	if st := getStatus(t, srv).Cluster; st.ChurnRequests != 0 || st.LastChurn != nil {
		t.Fatalf("fresh server has churn state: %+v", st)
	}
	resp, body := postJSON(t, srv, "/v1/cluster/churn", `{
		"zipfMovies": 2, "nodes": 2, "lambda": 0.5, "horizon": 300, "warmup": 30
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn run failed: %d %s", resp.StatusCode, body)
	}
	postJSON(t, srv, "/v1/cluster/churn", `{"nodes": 0}`) // errors count requests, not gauges
	st := getStatus(t, srv).Cluster
	if st.ChurnRequests != 2 {
		t.Errorf("churnRequests = %d, want 2", st.ChurnRequests)
	}
	if st.LastChurn == nil {
		t.Fatal("no lastChurn gauges after a successful run")
	}
	if st.LastChurn.Availability <= 0 || st.LastChurn.Availability > 1 {
		t.Errorf("lastChurn availability out of range: %+v", st.LastChurn)
	}
	if st.LastChurn.PeakLevel == "" {
		t.Errorf("lastChurn missing peak level: %+v", st.LastChurn)
	}
}

func TestClusterEndpointErrors(t *testing.T) {
	srv := clusterServer(t)
	cases := []struct {
		name, path, body string
	}{
		{"no catalog", "/v1/cluster/plan", `{"nodes": 2}`},
		{"zero nodes", "/v1/cluster/plan", `{"zipfMovies": 3, "nodes": 0}`},
		{"too many nodes", "/v1/cluster/plan", `{"zipfMovies": 3, "nodes": 1000}`},
		{"catalog cap", "/v1/cluster/plan", `{"zipfMovies": 100000, "nodes": 2}`},
		{"one-sided budget", "/v1/cluster/plan", `{"zipfMovies": 3, "nodes": 2, "nodeStreams": 50}`},
		{"horizon cap", "/v1/cluster/simulate", `{"zipfMovies": 3, "nodes": 8, "lambda": 1, "horizon": 20000}`},
		{"bad fail spec", "/v1/cluster/simulate", `{"zipfMovies": 3, "nodes": 2, "lambda": 1, "horizon": 500, "fail": "bogus"}`},
		{"unknown fail node", "/v1/cluster/simulate", `{"zipfMovies": 3, "nodes": 2, "lambda": 1, "horizon": 500, "fail": "node9@100"}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv, c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 4xx error: %s", c.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "error") {
			t.Errorf("%s: no error body: %s", c.name, body)
		}
	}
}

func TestStatuszCountsClusterRequests(t *testing.T) {
	srv := clusterServer(t)
	before := getStatus(t, srv).Cluster
	if before.PlanRequests != 0 || before.SimulateRequests != 0 {
		t.Fatalf("fresh server has nonzero cluster counts: %+v", before)
	}
	postJSON(t, srv, "/v1/cluster/plan", `{"zipfMovies": 3, "nodes": 2}`)
	postJSON(t, srv, "/v1/cluster/plan", `{"nodes": 0}`) // errors still count
	postJSON(t, srv, "/v1/cluster/simulate", `{
		"zipfMovies": 2, "nodes": 2, "lambda": 0.5, "horizon": 300, "warmup": 30
	}`)
	after := getStatus(t, srv).Cluster
	if after.PlanRequests != 2 {
		t.Errorf("planRequests = %d, want 2", after.PlanRequests)
	}
	if after.SimulateRequests != 1 {
		t.Errorf("simulateRequests = %d, want 1", after.SimulateRequests)
	}
}

func TestClusterChurnGray(t *testing.T) {
	srv := clusterServer(t)
	resp, body := postJSON(t, srv, "/v1/cluster/churn", `{
		"zipfMovies": 3, "nodes": 2, "replicas": 2, "headroom": 1.6,
		"lambda": 0.5, "horizon": 600, "warmup": 60, "seed": 7, "frozen": true,
		"gray": "slow:node0@100-500:15", "policy": "hedge"
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var churn ClusterChurnResponse
	if err := json.Unmarshal(body, &churn); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(churn.NodeHealth) != 2 {
		t.Fatalf("nodeHealth has %d entries, want 2: %+v", len(churn.NodeHealth), churn.NodeHealth)
	}
	for _, nh := range churn.NodeHealth {
		if nh.Node == "" || nh.State == "" || nh.Score <= 0 || nh.Score > 1 {
			t.Errorf("bad node health entry: %+v", nh)
		}
	}
	if churn.WaitP99 < churn.WaitP50 || churn.WaitMax < churn.WaitP99 {
		t.Errorf("wait quantiles inconsistent: %+v", churn)
	}
	if churn.HedgeWins > churn.Hedges {
		t.Errorf("hedge wins %d exceed hedges %d", churn.HedgeWins, churn.Hedges)
	}

	// The gray counters reach the /statusz gauges.
	st := getStatus(t, srv).Cluster
	if st.LastChurn == nil {
		t.Fatal("no lastChurn gauges after the gray run")
	}
	if st.LastChurn.Hedges != churn.Hedges || st.LastChurn.Quarantines != churn.Quarantines {
		t.Errorf("statusz gauges %+v do not match the run %+v", st.LastChurn, churn)
	}

	// A non-gray run reports no gray measurements at all.
	resp, body = postJSON(t, srv, "/v1/cluster/churn", `{
		"zipfMovies": 2, "nodes": 2, "lambda": 0.5, "horizon": 300, "warmup": 30, "frozen": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain run status %d: %s", resp.StatusCode, body)
	}
	var plain ClusterChurnResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatalf("decode plain: %v", err)
	}
	if plain.NodeHealth != nil || plain.Starved != 0 || plain.WaitP99 != 0 || plain.Hedges != 0 {
		t.Errorf("non-gray run reports gray measurements: %+v", plain)
	}
}

func TestClusterChurnGrayErrors(t *testing.T) {
	srv := clusterServer(t)
	cases := []struct {
		name, body string
	}{
		{"bad gray spec", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "gray": "bogus"}`},
		{"unknown gray node", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "gray": "slow:node9@100:4"}`},
		{"bad policy", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "policy": "psychic"}`},
		{"bad brownout fraction", `{"zipfMovies": 3, "nodes": 2, "lambda": 0.5, "horizon": 500, "gray": "brownout:node0@100:1.5"}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv, "/v1/cluster/churn", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, body)
		}
	}
}
