package httpapi

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"vodalloc/internal/parallel"
	"vodalloc/internal/resilience"
	"vodalloc/internal/sizing"
)

// State tracks the serving lifecycle for the health endpoints: liveness
// is implicit (the process answers), readiness flips on during startup
// and off again when draining begins, and the in-flight request gauge
// lets operators watch a drain complete. All methods are safe for
// concurrent use; the zero value is not-ready and not-draining.
type State struct {
	ready    atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64
}

// NewState returns a State that is not yet ready.
func NewState() *State { return &State{} }

// SetReady flips readiness. The serving binary sets it true once the
// listener is bound, so load balancers only route to a socket that
// accepts.
func (s *State) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether the process should receive new traffic.
func (s *State) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// BeginDrain marks the process as draining: /readyz starts failing and
// new API requests are shed with 503 while in-flight ones finish.
func (s *State) BeginDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
}

// Draining reports whether a drain has begun.
func (s *State) Draining() bool { return s.draining.Load() }

// Inflight returns the number of API requests currently being served
// (health endpoints are not counted).
func (s *State) Inflight() int { return int(s.inflight.Load()) }

func (s *State) begin() { s.inflight.Add(1) }
func (s *State) end()   { s.inflight.Add(-1) }

// CacheState records the evaluator-cache persistence outcomes the
// serving binary observes — the load at startup and the saves on drain
// or autosave — so /statusz can report them. Safe for concurrent use;
// until an event is recorded the corresponding outcome reads "none".
type CacheState struct {
	mu   sync.Mutex
	load string
	save string
}

// RecordLoad records the startup cache-load outcome.
func (c *CacheState) RecordLoad(entries int, err error) { c.record(&c.load, "loaded", entries, err) }

// RecordSave records the most recent cache-save outcome.
func (c *CacheState) RecordSave(entries int, err error) { c.record(&c.save, "saved", entries, err) }

func (c *CacheState) record(slot *string, verb string, entries int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		*slot = "error: " + err.Error()
		return
	}
	*slot = fmt.Sprintf("%s %d entries", verb, entries)
}

// Outcomes returns the recorded load and save outcomes, "none" for
// events that have not happened yet.
func (c *CacheState) Outcomes() (load, save string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	load, save = c.load, c.save
	if load == "" {
		load = "none"
	}
	if save == "" {
		save = "none"
	}
	return load, save
}

// handleHealthz is the liveness probe: 200 whenever the process can
// answer at all, ready or not.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzHandler reports readiness: 200 while the process should receive
// traffic, 503 during startup and drain so load balancers rotate it out.
func readyzHandler(s *State) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		switch {
		case s.Ready():
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		case s.Draining():
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
		default:
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("starting"))
		}
	})
}

// statuszHandler exposes the introspection gauges the chaos harness
// asserts on: goroutine count, in-flight requests, worker-pool and
// simulation-bulkhead occupancy, the circuit state, and the sizing
// evaluator's memo-cache traffic and persistence outcomes. These are
// point-in-time reads, not a consistent snapshot.
func statuszHandler(s *State, gate *resilience.Bulkhead, pool *parallel.Pool, br *resilience.Breaker, eval *sizing.Evaluator, cache *CacheState, cc *ClusterCounters) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		cs := eval.CacheStats()
		resp := StatusResponse{
			Goroutines:   runtime.NumGoroutine(),
			Ready:        s.Ready(),
			Draining:     s.Draining(),
			Inflight:     s.Inflight(),
			SimInflight:  gate.InUse(),
			SimCap:       gate.Cap(),
			WorkerTokens: pool.InUse(),
			WorkerCap:    pool.Cap(),
			Breaker:      br.State().String(),
			Cache: CacheStatus{
				Entries: cs.Entries,
				Hits:    cs.Hits,
				Misses:  cs.Misses,
			},
			Cluster: cc.Snapshot(),
		}
		if cache != nil {
			resp.Cache.Load, resp.Cache.Save = cache.Outcomes()
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// trackInflight counts requests through the hardened stack in the
// State's in-flight gauge and sheds new work with a clean 503 once a
// drain has begun (in-flight requests run to completion).
func trackInflight(s *State, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
			return
		}
		s.begin()
		defer s.end()
		next.ServeHTTP(w, r)
	})
}
