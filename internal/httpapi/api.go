// Package httpapi exposes the model, the sizing optimizer, the reserve
// estimator and the simulator over a JSON/HTTP interface, so the
// reproduction is usable from any language. All endpoints are POST with
// JSON bodies (GET /v1/healthz excepted); errors return status 400 with
// {"error": "..."}.
//
// Endpoints:
//
//	POST /v1/hit      — hit probabilities for one configuration
//	POST /v1/plan     — minimum-buffer multi-movie pre-allocation
//	POST /v1/curve    — a Figure-9 cost curve
//	POST /v1/reserve  — dedicated-stream reserve estimate
//	POST /v1/simulate — one discrete-event simulation run
//	POST /v1/replicate — R independent replications with pooled CIs
//	POST /v1/cluster/plan — multi-node placement
//	POST /v1/cluster/simulate — cluster simulation with node faults
//	POST /v1/cluster/churn — time-varying workload with the live
//	     rebalancing controller (flash crowds, budgeted migrations)
//	GET  /v1/healthz  — liveness probe (legacy path)
//
// The hardened stack built by New additionally serves, outside the
// timeout/drain gates:
//
//	GET  /healthz — liveness probe
//	GET  /readyz  — readiness probe (503 during startup and drain)
//	GET  /statusz — introspection gauges (goroutines, in-flight, pools)
package httpapi

import (
	"vodalloc/internal/workload"
)

// ConfigJSON is the static-partitioning configuration in requests.
// Rates default to the paper's (1, 3, 3) when zero.
type ConfigJSON struct {
	L      float64 `json:"l"`
	B      float64 `json:"b"`
	N      int     `json:"n"`
	RatePB float64 `json:"ratePB,omitempty"`
	RateFF float64 `json:"rateFF,omitempty"`
	RateRW float64 `json:"rateRW,omitempty"`
}

// ProfileJSON is the VCR behaviour in requests; distribution fields use
// the dist.Parse syntax. The probabilities default to the paper's
// 0.2/0.2/0.6 mix when all zero; Think defaults to "exp:15".
type ProfileJSON struct {
	PFF    float64 `json:"pff,omitempty"`
	PRW    float64 `json:"prw,omitempty"`
	PPAU   float64 `json:"ppau,omitempty"`
	Dur    string  `json:"dur,omitempty"`
	DurFF  string  `json:"durFF,omitempty"`
	DurRW  string  `json:"durRW,omitempty"`
	DurPAU string  `json:"durPAU,omitempty"`
	Think  string  `json:"think,omitempty"`
}

// HitRequest asks for the hit probabilities of one configuration.
type HitRequest struct {
	Config  ConfigJSON  `json:"config"`
	Profile ProfileJSON `json:"profile"`
	// Breakdown additionally returns the hit_w/hit_j/P(end) terms.
	Breakdown bool `json:"breakdown,omitempty"`
}

// HitResponse carries the model evaluation.
type HitResponse struct {
	HitFF  float64 `json:"hitFF"`
	HitRW  float64 `json:"hitRW"`
	HitPAU float64 `json:"hitPAU"`
	Hit    float64 `json:"hit"`
	Wait   float64 `json:"maxWait"`
	// Breakdowns are present when requested, keyed FF/RW/PAU.
	Breakdowns map[string]BreakdownJSON `json:"breakdowns,omitempty"`
}

// BreakdownJSON is the per-term decomposition.
type BreakdownJSON struct {
	Within float64   `json:"within"`
	Jumps  []float64 `json:"jumps"`
	End    float64   `json:"end"`
	Total  float64   `json:"total"`
}

// PlanRequest asks for a minimum-buffer pre-allocation.
type PlanRequest struct {
	Movies     []workload.MovieSpec `json:"movies"`
	MaxStreams int                  `json:"maxStreams,omitempty"`
	MaxBuffer  float64              `json:"maxBuffer,omitempty"`
}

// PlanResponse carries the plan.
type PlanResponse struct {
	Allocs       []AllocJSON `json:"allocs"`
	TotalStreams int         `json:"totalStreams"`
	TotalBuffer  float64     `json:"totalBuffer"`
	PureBatching int         `json:"pureBatchingStreams"`
}

// AllocJSON is one movie's allocation.
type AllocJSON struct {
	Movie string  `json:"movie"`
	N     int     `json:"n"`
	B     float64 `json:"b"`
	Hit   float64 `json:"hit"`
	Wait  float64 `json:"wait"`
}

// CurveRequest asks for a cost curve.
type CurveRequest struct {
	Movies    []workload.MovieSpec `json:"movies"`
	Phi       float64              `json:"phi"`
	MaxPoints int                  `json:"maxPoints,omitempty"`
}

// CurveResponse carries the curve and its optimum.
type CurveResponse struct {
	Points []CurvePointJSON `json:"points"`
	Min    CurvePointJSON   `json:"min"`
}

// CurvePointJSON is one curve sample.
type CurvePointJSON struct {
	TotalStreams int     `json:"totalStreams"`
	TotalBuffer  float64 `json:"totalBuffer"`
	RelativeCost float64 `json:"relativeCost"`
}

// ReserveRequest asks for a dedicated-stream reserve estimate.
type ReserveRequest struct {
	Config  ConfigJSON  `json:"config"`
	Profile ProfileJSON `json:"profile"`
	Lambda  float64     `json:"lambda"`
	// Z is the sizing quantile multiplier (default 2).
	Z float64 `json:"z,omitempty"`
}

// ReserveResponse carries the estimate.
type ReserveResponse struct {
	Hit          float64 `json:"hit"`
	OpsPerMinute float64 `json:"opsPerMinute"`
	Phase1       float64 `json:"phase1"`
	MissHold     float64 `json:"missHold"`
	Total        float64 `json:"total"`
	Reserve      int     `json:"reserve"`
}

// SimulateRequest asks for one simulation run.
type SimulateRequest struct {
	Config    ConfigJSON  `json:"config"`
	Profile   ProfileJSON `json:"profile"`
	Lambda    float64     `json:"lambda"`
	Horizon   float64     `json:"horizon,omitempty"` // default 3000, capped
	Warmup    float64     `json:"warmup,omitempty"`  // default horizon/10
	Seed      int64       `json:"seed,omitempty"`
	Piggyback bool        `json:"piggyback,omitempty"`
	Slew      float64     `json:"slew,omitempty"`
	// TotalStreams caps the shared I/O-stream pool (0 = uncapped);
	// Faults is a fault schedule in faults.Parse syntax, or
	// "rand:seed:mtbf:mttr:disks" for a seeded random schedule.
	TotalStreams int    `json:"totalStreams,omitempty"`
	Faults       string `json:"faults,omitempty"`
	// Engine selects the simulation backend ("des", "fluid" or "hybrid";
	// empty = des); FluidThreshold is the hybrid popularity cut and
	// ParticleRate the fluid shadow-viewer sampling rate.
	Engine         string  `json:"engine,omitempty"`
	FluidThreshold float64 `json:"fluidThreshold,omitempty"`
	ParticleRate   float64 `json:"particleRate,omitempty"`
}

// SimulateResponse summarizes the run.
type SimulateResponse struct {
	Hit            float64            `json:"hit"`
	HitCI          [2]float64         `json:"hitCI"`
	Resumes        uint64             `json:"resumes"`
	HitByKind      map[string]float64 `json:"hitByKind"`
	MeanWait       float64            `json:"meanWait"`
	MaxWait        float64            `json:"maxWait"`
	AvgDedicated   float64            `json:"avgDedicated"`
	PeakDedicated  int                `json:"peakDedicated"`
	AvgBatch       float64            `json:"avgBatch"`
	Arrivals       uint64             `json:"arrivals"`
	Departures     uint64             `json:"departures"`
	Merges         uint64             `json:"merges"`
	ModelHit       float64            `json:"modelHit"`
	ModelAgreement float64            `json:"modelAbsError"`
	// Faults is present when the run saw fault or degraded-mode activity.
	Faults *FaultSummaryJSON `json:"faults,omitempty"`
}

// FaultSummaryJSON summarizes fault-injection and degraded-mode
// accounting for a simulated run.
type FaultSummaryJSON struct {
	Availability     float64 `json:"availability"`
	DegradedFraction float64 `json:"degradedFraction"`
	ShedRate         float64 `json:"shedRate"`
	ForcedMissRate   float64 `json:"forcedMissRate"`
	DiskFailures     uint64  `json:"diskFailures"`
	DiskRepairs      uint64  `json:"diskRepairs"`
	PartitionsLost   uint64  `json:"partitionsLost"`
	Preempted        uint64  `json:"preempted"`
	Shed             uint64  `json:"shed"`
	ForcedMisses     uint64  `json:"forcedMisses"`
	Recovered        uint64  `json:"recovered"`
}

// ReplicateRequest asks for R independent replications of a simulation.
type ReplicateRequest struct {
	SimulateRequest
	Replications int `json:"replications"`
}

// ReplicateResponse summarizes the replication study.
type ReplicateResponse struct {
	PooledHit    float64   `json:"pooledHit"`
	PooledTrials uint64    `json:"pooledTrials"`
	PerRun       []float64 `json:"perRun"`
	// CI95 is the replication-based half-width of the hit estimate.
	CI95         float64 `json:"ci95"`
	AvgDedicated float64 `json:"avgDedicated"`
	AvgBatch     float64 `json:"avgBatch"`
	MaxWait      float64 `json:"maxWait"`
	ModelHit     float64 `json:"modelHit"`
}

// StatusResponse is the /statusz introspection snapshot: the gauges the
// chaos harness asserts its no-leak invariants on.
type StatusResponse struct {
	Goroutines int  `json:"goroutines"`
	Ready      bool `json:"ready"`
	Draining   bool `json:"draining"`
	// Inflight counts API requests currently in the hardened stack.
	Inflight int `json:"inflight"`
	// SimInflight/SimCap are the simulation bulkhead's occupancy.
	SimInflight int `json:"simInflight"`
	SimCap      int `json:"simCap"`
	// WorkerTokens/WorkerCap are the shared sizing worker pool's occupancy.
	WorkerTokens int `json:"workerTokens"`
	WorkerCap    int `json:"workerCap"`
	// Breaker is the simulation circuit state: closed, open, or half-open.
	Breaker string `json:"breaker"`
	// Cache is the sizing evaluator's memo-cache snapshot.
	Cache CacheStatus `json:"cache"`
	// Cluster counts requests into the cluster endpoints.
	Cluster ClusterStatus `json:"cluster"`
}

// CacheStatus describes the sizing evaluator's memo cache on /statusz:
// live traffic gauges plus the persistence outcomes the serving binary
// recorded. Load and Save are human-readable ("loaded 412 entries",
// "error: …", or "none"); both are empty when the binary runs without a
// cache file.
type CacheStatus struct {
	Entries uint64 `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Load    string `json:"load,omitempty"`
	Save    string `json:"save,omitempty"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
