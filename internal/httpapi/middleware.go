package httpapi

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vodalloc/internal/parallel"
	"vodalloc/internal/resilience"
	"vodalloc/internal/sizing"
)

// Options configures the hardened handler stack returned by New.
// The zero value gets sane production defaults.
type Options struct {
	// Timeout is the per-request wall-clock budget; the request context
	// is canceled and 503 returned when it expires. Default 30s.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies; larger bodies get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// MaxInflightSim bounds concurrent /v1/simulate and /v1/replicate
	// requests (they burn a CPU each); excess load is shed with 503 +
	// Retry-After instead of queueing unboundedly. Default 4.
	MaxInflightSim int
	// Workers caps the total sizing-sweep goroutines across all in-flight
	// /v1/plan and /v1/curve requests: they share one worker pool, so N
	// concurrent requests contend for Workers tokens instead of spawning
	// N × GOMAXPROCS goroutines. Default GOMAXPROCS.
	Workers int
	// Log, when non-nil, receives one access-log line per request with
	// method, path, status, duration, and outcome.
	Log *log.Logger
	// BreakerThreshold is how many consecutive simulation timeouts trip
	// the circuit to fast-fail 503s. Default 5.
	BreakerThreshold int
	// BreakerCooldown is how long the tripped circuit stays open before
	// a half-open probe is admitted. Default 5s.
	BreakerCooldown time.Duration
	// State, when non-nil, is the lifecycle tracker behind /readyz and
	// the drain gate — the serving binary owns it so it can flip
	// readiness around listen/shutdown. When nil, New creates one
	// already marked ready (embedding and tests need no ceremony).
	State *State
	// Evaluator, when non-nil, is the model evaluator behind the sizing
	// endpoints — the serving binary owns it so it can load a persisted
	// memo cache before serving and save it back on drain. When nil, New
	// creates a fresh one. Its Pool is attached to the shared worker
	// pool unless already set.
	Evaluator *sizing.Evaluator
	// Cache, when non-nil, receives the cache persistence outcomes the
	// serving binary records (load at startup, saves on drain) and
	// surfaces them on /statusz.
	Cache *CacheState
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = maxBodyBytes
	}
	if o.MaxInflightSim <= 0 {
		o.MaxInflightSim = 4
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// New returns the hardened service handler: panic recovery, per-request
// timeouts, body limits, load shedding on the simulation endpoints, a
// circuit breaker over them, and the health/introspection endpoints.
// NewMux remains the bare routing table for embedding.
func New(o Options) http.Handler {
	o = o.withDefaults()
	state := o.State
	if state == nil {
		state = NewState()
		state.SetReady(true)
	}
	pool := parallel.NewPool(o.Workers)
	eval := o.Evaluator
	if eval == nil {
		eval = &sizing.Evaluator{}
	}
	if eval.Pool == nil {
		eval.Pool = pool
	}
	gate := resilience.NewBulkhead(o.MaxInflightSim)
	br := resilience.NewBreaker(o.BreakerThreshold, o.BreakerCooldown)

	cc := &ClusterCounters{}
	var h http.Handler = newMux(o.MaxBodyBytes, gate, br, eval, cc)
	// The timeout handler caps handler wall time and cancels r.Context;
	// its body is written verbatim on expiry.
	h = http.TimeoutHandler(h, o.Timeout, `{"error":"request timed out"}`)
	h = trackInflight(state, h)
	h = Recover(h)
	if o.Log != nil {
		h = AccessLog(o.Log, h)
	}

	// Health and introspection bypass the timeout, drain and in-flight
	// accounting: a probe must answer even when the API is saturated or
	// draining, and must not hold the gauges it reports.
	outer := http.NewServeMux()
	outer.HandleFunc("/healthz", handleHealthz)
	outer.Handle("/readyz", readyzHandler(state))
	outer.Handle("/statusz", statuszHandler(state, gate, pool, br, eval, o.Cache, cc))
	outer.Handle("/", h)
	return outer
}

// recoveredHeader marks a response produced by the panic-recovery
// middleware, so access logs can tell a recovered panic from an
// ordinary 500.
const recoveredHeader = "X-Recovered"

// Recover converts handler panics into 500 JSON errors instead of
// killing the connection (and, for unserved panics, the process).
// http.ErrAbortHandler keeps its usual abort semantics.
func Recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			// Best effort: if the handler already wrote headers this is a
			// no-op on the status line, but the connection survives.
			w.Header().Set(recoveredHeader, "panic")
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInflight sheds requests over the bulkhead's capacity with 503 +
// Retry-After rather than queueing them. The slot is released when the
// handler returns OR when the request context is canceled — whichever
// comes first — so a client that gives up (or a request that times out)
// frees its admission slot immediately even if the handler is still
// unwinding through its cancellation checkpoints.
func limitInflight(gate *resilience.Bulkhead, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !gate.TryAcquire() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("too many concurrent simulations; retry shortly"))
			return
		}
		release := sync.OnceFunc(gate.Release)
		stop := context.AfterFunc(r.Context(), release)
		defer func() {
			stop()
			release()
		}()
		next.ServeHTTP(w, r)
	})
}

// breakerHeader marks a 503 produced by the open circuit breaker, so
// clients and the chaos harness can tell a fast-fail from an
// overload shed or a drain.
const breakerHeader = "X-Circuit"

// breakerGate wraps the simulation endpoints in a circuit breaker:
// repeated request timeouts trip it, after which calls fast-fail with
// 503 + Retry-After instead of queueing doomed work behind a struggling
// simulator. An outcome is recorded when the handler returns — failure
// iff the request's deadline expired — so the breaker measures the
// slow-path symptom (timeouts), not client errors.
func breakerGate(br *resilience.Breaker, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !br.Allow() {
			w.Header().Set("Retry-After", strconv.Itoa(int(br.Cooldown().Seconds())+1))
			w.Header().Set(breakerHeader, "open")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("simulation circuit open after repeated timeouts; retry after cooldown"))
			return
		}
		defer func() {
			// Recorded in a defer so a panicking handler still settles its
			// half-open probe instead of wedging the breaker.
			if r.Context().Err() == context.DeadlineExceeded {
				br.Failure()
			} else {
				br.Success()
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the status code for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// AccessLog writes one line per request: method, path, status, elapsed
// time, and the outcome class (ok, client-error, shed, recovered-panic,
// or error).
func AccessLog(l *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := "ok"
		switch {
		case rec.Header().Get(recoveredHeader) != "":
			outcome = "recovered-panic"
		case status == http.StatusServiceUnavailable:
			outcome = "shed"
		case status >= 500:
			outcome = "error"
		case status >= 400:
			outcome = "client-error"
		}
		l.Printf("%s %s %d %s %s", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond), outcome)
	})
}
