package httpapi

import (
	"fmt"
	"log"
	"net/http"
	"time"

	"vodalloc/internal/parallel"
	"vodalloc/internal/sizing"
)

// Options configures the hardened handler stack returned by New.
// The zero value gets sane production defaults.
type Options struct {
	// Timeout is the per-request wall-clock budget; the request context
	// is canceled and 503 returned when it expires. Default 30s.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies; larger bodies get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// MaxInflightSim bounds concurrent /v1/simulate and /v1/replicate
	// requests (they burn a CPU each); excess load is shed with 503 +
	// Retry-After instead of queueing unboundedly. Default 4.
	MaxInflightSim int
	// Workers caps the total sizing-sweep goroutines across all in-flight
	// /v1/plan and /v1/curve requests: they share one worker pool, so N
	// concurrent requests contend for Workers tokens instead of spawning
	// N × GOMAXPROCS goroutines. Default GOMAXPROCS.
	Workers int
	// Log, when non-nil, receives one access-log line per request with
	// method, path, status, duration, and outcome.
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = maxBodyBytes
	}
	if o.MaxInflightSim <= 0 {
		o.MaxInflightSim = 4
	}
	return o
}

// New returns the hardened service handler: panic recovery, per-request
// timeouts, body limits, and load shedding on the simulation endpoints.
// NewMux remains the bare routing table for embedding.
func New(o Options) http.Handler {
	o = o.withDefaults()
	sem := make(chan struct{}, o.MaxInflightSim)
	eval := &sizing.Evaluator{Pool: parallel.NewPool(o.Workers)}
	var h http.Handler = newMux(o.MaxBodyBytes, sem, eval)
	// The timeout handler caps handler wall time and cancels r.Context;
	// its body is written verbatim on expiry.
	h = http.TimeoutHandler(h, o.Timeout, `{"error":"request timed out"}`)
	h = Recover(h)
	if o.Log != nil {
		h = AccessLog(o.Log, h)
	}
	return h
}

// recoveredHeader marks a response produced by the panic-recovery
// middleware, so access logs can tell a recovered panic from an
// ordinary 500.
const recoveredHeader = "X-Recovered"

// Recover converts handler panics into 500 JSON errors instead of
// killing the connection (and, for unserved panics, the process).
// http.ErrAbortHandler keeps its usual abort semantics.
func Recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			// Best effort: if the handler already wrote headers this is a
			// no-op on the status line, but the connection survives.
			w.Header().Set(recoveredHeader, "panic")
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInflight sheds requests over the semaphore's capacity with 503 +
// Retry-After rather than queueing them.
func limitInflight(sem chan struct{}, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("too many concurrent simulations; retry shortly"))
		}
	})
}

// statusRecorder captures the status code for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// AccessLog writes one line per request: method, path, status, elapsed
// time, and the outcome class (ok, client-error, shed, recovered-panic,
// or error).
func AccessLog(l *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := "ok"
		switch {
		case rec.Header().Get(recoveredHeader) != "":
			outcome = "recovered-panic"
		case status == http.StatusServiceUnavailable:
			outcome = "shed"
		case status >= 500:
			outcome = "error"
		case status >= 400:
			outcome = "client-error"
		}
		l.Printf("%s %s %d %s %s", r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond), outcome)
	})
}
