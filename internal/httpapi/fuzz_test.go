package httpapi

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzSimulateDecode exercises the request-decoding and validation path
// of /v1/simulate without running the simulator: arbitrary bodies must
// either be rejected with an error or produce a config the validators
// accept — never a panic.
func FuzzSimulateDecode(f *testing.F) {
	for _, seed := range []string{
		`{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5}`,
		`{"config":{"l":120,"b":60,"n":30},"lambda":0.5,"faults":"fail@300:d0,repair@600:d0"}`,
		`{"config":{"l":120,"b":60,"n":30},"totalStreams":60,"faults":"rand:7:400:100:6"}`,
		`{"config":{"l":-1,"b":1e308,"n":-5}}`,
		`{"profile":{"dur":"gamma:2:4","think":"exp:15","pff":0.2,"prw":0.2,"ppau":0.6}}`,
		`{"profile":{"dur":"::::"}}`,
		`{"faults":"glitch@-1:0"}`,
		`{`, `[]`, `null`, `0`, `""`, `{"unknown":true}`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req SimulateRequest
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // rejected bodies are fine; panics are not
		}
		if _, err := req.Config.toConfig(); err != nil {
			return
		}
		if _, err := req.Profile.toProfile(); err != nil {
			return
		}
		if _, err := parseFaults(req.Faults, 1000); err != nil {
			return
		}
	})
}
