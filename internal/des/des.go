// Package des provides a minimal discrete-event simulation kernel: a
// priority queue of timestamped events, a simulation clock, and
// deterministic FIFO tie-breaking for simultaneous events.
//
// The VOD simulator (internal/sim) runs entirely on this kernel; keeping
// the kernel free of domain knowledge makes its ordering guarantees easy
// to test in isolation.
//
// Allocation strategy. Simulations schedule millions of short-lived
// events, so the kernel never heap-allocates per event: event records
// live in slab blocks owned by the kernel and are recycled through a
// free list the moment they fire or are canceled. Callers hold
// generation-tagged Handles rather than pointers — recycling bumps the
// record's generation, so a stale Cancel (on an event that already fired
// and whose slot now carries a different event) is a safe no-op instead
// of a use-after-free. The (time, seq) total order is untouched by the
// arena: any heap over a strict total order pops the identical sequence,
// so checkpoint digests and replay boundaries are bit-identical to the
// previous per-event-allocation kernel (the slab property test pins
// this against a reference heap kernel).
package des

import (
	"errors"
	"fmt"
	"math"
)

// event is one scheduled-callback slot in the kernel's arena. Slots are
// recycled after firing or cancellation; the generation counter
// invalidates Handles to previous incarnations.
type event struct {
	time   float64
	seq    uint64 // FIFO tie-break for equal timestamps
	index  int32  // heap index; -1 once popped or canceled
	gen    uint32 // incremented on recycle; stale Handles mismatch
	action func(now float64)
	label  string
}

// Handle is a generation-tagged reference to a scheduled event, usable
// with Cancel. The zero Handle references nothing: canceling it is a
// no-op. Handles to events that have fired or been canceled go stale
// (their slot's generation moves on) and are equally inert.
type Handle struct {
	ev  *event
	gen uint32
}

// Active reports whether the referenced event is still pending.
func (h Handle) Active() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// Canceled reports whether the event has been canceled or already fired
// (or the Handle is zero).
func (h Handle) Canceled() bool { return !h.Active() }

// Time returns the event's scheduled time while it is pending, and NaN
// once the Handle has gone stale.
func (h Handle) Time() float64 {
	if !h.Active() {
		return math.NaN()
	}
	return h.ev.time
}

// Label returns the event's diagnostic label while it is pending, and
// "" once the Handle has gone stale.
func (h Handle) Label() string {
	if !h.Active() {
		return ""
	}
	return h.ev.label
}

// ErrPastEvent is returned when scheduling before the current clock.
var ErrPastEvent = errors.New("des: cannot schedule event in the past")

// slabBlock is the number of event records allocated per slab growth.
// One block is 16 KiB; a simulation's live arena converges on its peak
// pending-event count and allocates nothing afterwards.
const slabBlock = 256

// Kernel is the simulation driver. The zero value is ready to use with a
// clock at 0. Kernel is not safe for concurrent use; a simulation is a
// single logical thread of control.
type Kernel struct {
	now    float64
	queue  []*event // binary min-heap ordered by (time, seq)
	seq    uint64
	fired  uint64
	halted bool
	free   []*event // recycled slots, LIFO for cache warmth
	slab   []event  // tail of the current allocation block
}

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.queue) }

// alloc takes a slot from the free list, growing the slab when empty.
func (k *Kernel) alloc() *event {
	if n := len(k.free) - 1; n >= 0 {
		e := k.free[n]
		k.free[n] = nil
		k.free = k.free[:n]
		return e
	}
	if len(k.slab) == 0 {
		k.slab = make([]event, slabBlock)
	}
	e := &k.slab[0]
	k.slab = k.slab[1:]
	return e
}

// recycle returns a fired or canceled slot to the free list. Bumping the
// generation invalidates every outstanding Handle to this incarnation;
// clearing the action releases the closure (and whatever it captures)
// to the GC immediately rather than at next reuse.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.action = nil
	e.label = ""
	k.free = append(k.free, e)
}

// ScheduleAt registers action to run at absolute time t. Events at equal
// times fire in scheduling order. It returns the event handle, usable
// with Cancel.
func (k *Kernel) ScheduleAt(t float64, label string, action func(now float64)) (Handle, error) {
	if math.IsNaN(t) || t < k.now {
		return Handle{}, fmt.Errorf("%w: t=%v now=%v (%s)", ErrPastEvent, t, k.now, label)
	}
	e := k.alloc()
	e.time = t
	e.seq = k.seq
	e.action = action
	e.label = label
	k.seq++
	k.push(e)
	return Handle{ev: e, gen: e.gen}, nil
}

// Schedule registers action to run delay time units from now.
func (k *Kernel) Schedule(delay float64, label string, action func(now float64)) (Handle, error) {
	return k.ScheduleAt(k.now+delay, label, action)
}

// Cancel removes a pending event. Canceling a fired, already-canceled,
// stale or zero Handle is a no-op returning false.
func (k *Kernel) Cancel(h Handle) bool {
	e := h.ev
	if e == nil || e.gen != h.gen || e.index < 0 {
		return false
	}
	k.remove(int(e.index))
	e.index = -1
	k.recycle(e)
	return true
}

// Halt stops the current Run/RunUntil after the in-flight event returns.
func (k *Kernel) Halt() { k.halted = true }

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed. The slot is recycled before
// the callback runs — nested ScheduleAt calls reuse it immediately —
// which is safe because outstanding Handles go stale at recycle.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := k.popMin()
	e.index = -1
	k.now = e.time
	k.fired++
	act := e.action
	k.recycle(e)
	act(k.now)
	return true
}

// RunUntil executes events in timestamp order until the queue empties,
// the next event lies beyond horizon, or Halt is called. The clock is
// left at the last executed event (or advanced to horizon when the queue
// outlives it).
func (k *Kernel) RunUntil(horizon float64) {
	k.halted = false
	for !k.halted && len(k.queue) > 0 {
		if k.queue[0].time > horizon {
			break
		}
		k.Step()
	}
	if k.now < horizon && (len(k.queue) == 0 || k.queue[0].time > horizon) {
		k.now = horizon
	}
}

// Run executes events until the queue empties or Halt is called.
func (k *Kernel) Run() {
	k.halted = false
	for !k.halted && k.Step() {
	}
}

// State is an observable snapshot of the kernel's counters: the virtual
// clock, the scheduling sequence number, the number of events executed,
// and the pending-queue depth. Together with the determinism guarantee
// (same initial schedule + same callbacks ⇒ same event sequence), a
// State identifies a replayable boundary of a run: executing the same
// simulation from scratch until Fired events have run lands on an
// identical kernel — the foundation of crash-safe checkpointing.
type State struct {
	Now     float64
	Seq     uint64
	Fired   uint64
	Pending int
}

// State returns the kernel's current counters.
func (k *Kernel) State() State {
	return State{Now: k.now, Seq: k.seq, Fired: k.fired, Pending: len(k.queue)}
}

// ErrExhausted reports a replay that ran out of events before reaching
// its target boundary — the checkpoint belongs to a different schedule.
var ErrExhausted = errors.New("des: event queue exhausted before replay target")

// RunToFired executes events until the cumulative fired count reaches
// target — the replay half of checkpoint restore: a simulation rebuilt
// from its configuration reaches the exact checkpointed state by
// re-executing the deterministic event sequence up to the boundary.
// Every `every` events (minimum 1) it calls check and stops with
// check's error when non-nil; a nil check replays without interruption.
// Reaching an empty queue first returns ErrExhausted.
func (k *Kernel) RunToFired(target uint64, every int, check func() error) error {
	if every < 1 {
		every = 1
	}
	n := 0
	for k.fired < target {
		if !k.Step() {
			return fmt.Errorf("%w: fired %d of %d", ErrExhausted, k.fired, target)
		}
		if check == nil {
			continue
		}
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunUntilCheck is RunUntil with a periodic abort hook: every `every`
// events (minimum 1) it calls check and stops with check's error when
// non-nil, leaving the clock at the last executed event. The simulator
// uses it to honor request-context cancellation with a latency bound of
// `every` events while keeping the hot loop free of per-event overhead.
// A nil check degenerates to RunUntil.
func (k *Kernel) RunUntilCheck(horizon float64, every int, check func() error) error {
	if check == nil {
		k.RunUntil(horizon)
		return nil
	}
	if every < 1 {
		every = 1
	}
	k.halted = false
	n := 0
	for !k.halted && len(k.queue) > 0 {
		if k.queue[0].time > horizon {
			break
		}
		k.Step()
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return err
			}
		}
	}
	if k.now < horizon && (len(k.queue) == 0 || k.queue[0].time > horizon) {
		k.now = horizon
	}
	return nil
}

// The heap below is a specialized binary min-heap over (time, seq) —
// container/heap without the interface boxing and with sift paths that
// move the displaced element once instead of swapping pairwise. (time,
// seq) is a strict total order (seq is unique), so the pop sequence is
// independent of the internal arrangement; any correct heap fires the
// same events in the same order.

func eventLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push appends e and sifts it up.
func (k *Kernel) push(e *event) {
	i := len(k.queue)
	e.index = int32(i)
	k.queue = append(k.queue, e)
	k.up(i)
}

// up sifts the element at i toward the root.
func (k *Kernel) up(i int) {
	q := k.queue
	e := q[i]
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = e
	e.index = int32(i)
}

// down sifts the element at i toward the leaves.
func (k *Kernel) down(i int) {
	q := k.queue
	n := len(q)
	e := q[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(q[r], q[l]) {
			m = r
		}
		if !eventLess(q[m], e) {
			break
		}
		q[i] = q[m]
		q[i].index = int32(i)
		i = m
	}
	q[i] = e
	e.index = int32(i)
}

// popMin removes and returns the earliest event.
func (k *Kernel) popMin() *event {
	q := k.queue
	n := len(q) - 1
	e := q[0]
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		k.down(0)
	}
	return e
}

// remove deletes the element at heap index i.
func (k *Kernel) remove(i int) {
	q := k.queue
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	k.queue = q[:n]
	if i < n {
		q[i] = last
		last.index = int32(i)
		k.down(i)
		if int(last.index) == i {
			k.up(i)
		}
	}
}
