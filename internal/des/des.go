// Package des provides a minimal discrete-event simulation kernel: a
// priority queue of timestamped events, a simulation clock, and
// deterministic FIFO tie-breaking for simultaneous events.
//
// The VOD simulator (internal/sim) runs entirely on this kernel; keeping
// the kernel free of domain knowledge makes its ordering guarantees easy
// to test in isolation.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Event is a scheduled callback. The callback receives the simulation so
// it can schedule further events.
type Event struct {
	time   float64
	seq    uint64 // FIFO tie-break for equal timestamps
	index  int    // heap index; -1 once popped or canceled
	Action func(now float64)
	// Label optionally names the event for tracing and diagnostics.
	Label string
}

// Time returns the event's scheduled time.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event has been canceled or already fired.
func (e *Event) Canceled() bool { return e.index < 0 }

// ErrPastEvent is returned when scheduling before the current clock.
var ErrPastEvent = errors.New("des: cannot schedule event in the past")

// Kernel is the simulation driver. The zero value is ready to use with a
// clock at 0. Kernel is not safe for concurrent use; a simulation is a
// single logical thread of control.
type Kernel struct {
	now    float64
	queue  eventQueue
	seq    uint64
	fired  uint64
	halted bool
}

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return k.queue.Len() }

// ScheduleAt registers action to run at absolute time t. Events at equal
// times fire in scheduling order. It returns the event handle, usable
// with Cancel.
func (k *Kernel) ScheduleAt(t float64, label string, action func(now float64)) (*Event, error) {
	if math.IsNaN(t) || t < k.now {
		return nil, fmt.Errorf("%w: t=%v now=%v (%s)", ErrPastEvent, t, k.now, label)
	}
	e := &Event{time: t, seq: k.seq, Action: action, Label: label}
	k.seq++
	heap.Push(&k.queue, e)
	return e, nil
}

// Schedule registers action to run delay time units from now.
func (k *Kernel) Schedule(delay float64, label string, action func(now float64)) (*Event, error) {
	return k.ScheduleAt(k.now+delay, label, action)
}

// Cancel removes a pending event. Canceling a fired or already-canceled
// event is a no-op returning false.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.queue, e.index)
	e.index = -1
	return true
}

// Halt stops the current Run/RunUntil after the in-flight event returns.
func (k *Kernel) Halt() { k.halted = true }

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	e.index = -1
	k.now = e.time
	k.fired++
	e.Action(k.now)
	return true
}

// RunUntil executes events in timestamp order until the queue empties,
// the next event lies beyond horizon, or Halt is called. The clock is
// left at the last executed event (or advanced to horizon when the queue
// outlives it).
func (k *Kernel) RunUntil(horizon float64) {
	k.halted = false
	for !k.halted && k.queue.Len() > 0 {
		if k.queue[0].time > horizon {
			break
		}
		k.Step()
	}
	if k.now < horizon && (k.queue.Len() == 0 || k.queue[0].time > horizon) {
		k.now = horizon
	}
}

// Run executes events until the queue empties or Halt is called.
func (k *Kernel) Run() {
	k.halted = false
	for !k.halted && k.Step() {
	}
}

// State is an observable snapshot of the kernel's counters: the virtual
// clock, the scheduling sequence number, the number of events executed,
// and the pending-queue depth. Together with the determinism guarantee
// (same initial schedule + same callbacks ⇒ same event sequence), a
// State identifies a replayable boundary of a run: executing the same
// simulation from scratch until Fired events have run lands on an
// identical kernel — the foundation of crash-safe checkpointing.
type State struct {
	Now     float64
	Seq     uint64
	Fired   uint64
	Pending int
}

// State returns the kernel's current counters.
func (k *Kernel) State() State {
	return State{Now: k.now, Seq: k.seq, Fired: k.fired, Pending: k.queue.Len()}
}

// ErrExhausted reports a replay that ran out of events before reaching
// its target boundary — the checkpoint belongs to a different schedule.
var ErrExhausted = errors.New("des: event queue exhausted before replay target")

// RunToFired executes events until the cumulative fired count reaches
// target — the replay half of checkpoint restore: a simulation rebuilt
// from its configuration reaches the exact checkpointed state by
// re-executing the deterministic event sequence up to the boundary.
// Every `every` events (minimum 1) it calls check and stops with
// check's error when non-nil; a nil check replays without interruption.
// Reaching an empty queue first returns ErrExhausted.
func (k *Kernel) RunToFired(target uint64, every int, check func() error) error {
	if every < 1 {
		every = 1
	}
	n := 0
	for k.fired < target {
		if !k.Step() {
			return fmt.Errorf("%w: fired %d of %d", ErrExhausted, k.fired, target)
		}
		if check == nil {
			continue
		}
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunUntilCheck is RunUntil with a periodic abort hook: every `every`
// events (minimum 1) it calls check and stops with check's error when
// non-nil, leaving the clock at the last executed event. The simulator
// uses it to honor request-context cancellation with a latency bound of
// `every` events while keeping the hot loop free of per-event overhead.
// A nil check degenerates to RunUntil.
func (k *Kernel) RunUntilCheck(horizon float64, every int, check func() error) error {
	if check == nil {
		k.RunUntil(horizon)
		return nil
	}
	if every < 1 {
		every = 1
	}
	k.halted = false
	n := 0
	for !k.halted && k.queue.Len() > 0 {
		if k.queue[0].time > horizon {
			break
		}
		k.Step()
		if n++; n >= every {
			n = 0
			if err := check(); err != nil {
				return err
			}
		}
	}
	if k.now < horizon && (k.queue.Len() == 0 || k.queue[0].time > horizon) {
		k.now = horizon
	}
	return nil
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
