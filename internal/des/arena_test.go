package des

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file pins the arena kernel against a reference kernel that works
// the way the pre-arena implementation did: one heap allocation per
// event, container/heap ordering, no recycling. The two must fire
// identical (time, payload) sequences and return identical Cancel
// results under arbitrary schedule/cancel interleavings — the property
// that makes the slab/free-list arena a pure optimization.

// refEvent / refQueue / refKernel: the reference implementation.
type refEvent struct {
	time   float64
	seq    uint64
	index  int
	action func(now float64)
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type refKernel struct {
	now   float64
	queue refQueue
	seq   uint64
}

func (k *refKernel) schedule(t float64, action func(now float64)) *refEvent {
	e := &refEvent{time: t, seq: k.seq, action: action}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

func (k *refKernel) cancel(e *refEvent) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.queue, e.index)
	e.index = -1
	return true
}

func (k *refKernel) run() {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*refEvent)
		e.index = -1
		k.now = e.time
		e.action(k.now)
	}
}

// driver abstracts the two kernels behind the operations the script
// exercises: schedule returns a canceler for the new event.
type driver struct {
	schedule func(t float64, action func(now float64)) (cancel func() bool)
	run      func()
}

type firedRec struct {
	now     float64
	payload int
}

// runScript drives a kernel through a seeded random workload — nested
// scheduling from inside callbacks, cancels of live, fired and
// already-canceled events — and returns the fired sequence plus every
// Cancel result. Both kernels consume the rng in fire order, so equal
// logs imply equal event sequencing throughout.
func runScript(seed int64, d driver) (fired []firedRec, cancels []bool) {
	rng := rand.New(rand.NewSource(seed))
	var cancelers []func() bool
	payload := 0
	var sched func(base float64, depth int)
	sched = func(base float64, depth int) {
		p := payload
		payload++
		t := base + rng.Float64()*50
		c := d.schedule(t, func(now float64) {
			fired = append(fired, firedRec{now, p})
			if depth < 3 && rng.Float64() < 0.4 {
				sched(now, depth+1)
			}
			if len(cancelers) > 0 && rng.Float64() < 0.3 {
				// Cancel a random handle: may be live, fired (stale) or
				// already canceled — all three must behave identically.
				cancels = append(cancels, cancelers[rng.Intn(len(cancelers))]())
			}
		})
		cancelers = append(cancelers, c)
	}
	for i := 0; i < 30; i++ {
		sched(0, 0)
	}
	for i := range cancelers {
		if rng.Float64() < 0.15 {
			cancels = append(cancels, cancelers[i]())
		}
	}
	d.run()
	return fired, cancels
}

func arenaDriver(k *Kernel) driver {
	return driver{
		schedule: func(t float64, action func(now float64)) func() bool {
			h, err := k.ScheduleAt(t, "p", action)
			if err != nil {
				panic(err)
			}
			return func() bool { return k.Cancel(h) }
		},
		run: k.Run,
	}
}

func refDriver(k *refKernel) driver {
	return driver{
		schedule: func(t float64, action func(now float64)) func() bool {
			e := k.schedule(t, action)
			return func() bool { return k.cancel(e) }
		},
		run: k.run,
	}
}

// Property: the arena kernel and the reference kernel fire identical
// (time, payload) sequences and agree on every Cancel result, for any
// random schedule/cancel interleaving.
func TestPropertyArenaMatchesReferenceKernel(t *testing.T) {
	prop := func(seed int64) bool {
		var ak Kernel
		aFired, aCancels := runScript(seed, arenaDriver(&ak))
		var rk refKernel
		rFired, rCancels := runScript(seed, refDriver(&rk))
		if len(aFired) != len(rFired) || len(aCancels) != len(rCancels) {
			return false
		}
		for i := range aFired {
			if aFired[i] != rFired[i] {
				return false
			}
		}
		for i := range aCancels {
			if aCancels[i] != rCancels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A handle whose event fired must stay inert even after its arena slot
// has been reused by a new event: the generation tag, not the pointer,
// decides liveness.
func TestStaleHandleDoesNotCancelReusedSlot(t *testing.T) {
	var k Kernel
	h1, err := k.ScheduleAt(1, "first", func(float64) {})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if h1.Active() {
		t.Fatal("fired handle still active")
	}
	fired := false
	h2, err := k.ScheduleAt(2, "second", func(float64) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if h1.ev != h2.ev {
		t.Fatalf("expected slot reuse: %p vs %p", h1.ev, h2.ev)
	}
	if k.Cancel(h1) {
		t.Error("stale handle canceled the reused slot")
	}
	k.Run()
	if !fired {
		t.Error("second event did not fire")
	}
}

// Canceling from inside the firing callback of the same slot's previous
// incarnation must also be inert; and the arena must recycle canceled
// slots (bounded live footprint under churn).
func TestArenaRecyclesCanceledSlots(t *testing.T) {
	var k Kernel
	for i := 0; i < 10_000; i++ {
		h, err := k.ScheduleAt(float64(i), "churn", func(float64) {})
		if err != nil {
			t.Fatal(err)
		}
		k.Cancel(h)
	}
	if got := len(k.free); got > 2*slabBlock {
		t.Errorf("free list grew to %d slots; recycling is not reusing them", got)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d want 0", k.Pending())
	}
}

// benchAction is package-level so the benchmark measures the kernel's
// allocations, not closure construction.
var benchSink float64

func benchAction(now float64) { benchSink = now }

// BenchmarkKernel measures steady-state schedule+fire churn. The
// allocation pin for this path lives in TestKernelSteadyStateAllocs;
// ci.sh runs the benchmark with -benchmem as a smoke check.
func BenchmarkKernel(b *testing.B) {
	b.ReportAllocs()
	var k Kernel
	for i := 0; i < b.N; i++ {
		if _, err := k.Schedule(1, "bench", benchAction); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
}

// BenchmarkKernelDeepQueue exercises heap sifts with 1k pending events.
func BenchmarkKernelDeepQueue(b *testing.B) {
	b.ReportAllocs()
	var k Kernel
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		if _, err := k.Schedule(1+rng.Float64(), "fill", benchAction); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Schedule(1+rng.Float64(), "bench", benchAction); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
}

// TestKernelSteadyStateAllocs is the recorded allocation ceiling for the
// kernel hot path: once the arena is warm, a schedule+fire cycle must
// not allocate. The slab amortizes to < 1/slabBlock allocations per
// event; the ceiling of 0.05 leaves room for that tail while failing on
// any per-event allocation creeping back in.
func TestKernelSteadyStateAllocs(t *testing.T) {
	var k Kernel
	for i := 0; i < 2*slabBlock; i++ { // warm the slab and free list
		if _, err := k.Schedule(1, "warm", benchAction); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	avg := testing.AllocsPerRun(5000, func() {
		if _, err := k.Schedule(1, "pin", benchAction); err != nil {
			t.Fatal(err)
		}
		k.Step()
	})
	if avg > 0.05 {
		t.Errorf("schedule+fire allocates %.3f objects/op; the arena hot path must stay allocation-free", avg)
	}
}
