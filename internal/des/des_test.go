package des

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		if _, err := k.ScheduleAt(tm, "e", func(now float64) {
			got = append(got, now)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
	if len(got) != 5 || k.Fired() != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
	if k.Now() != 5 {
		t.Errorf("clock = %g want 5", k.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := k.ScheduleAt(7, "tie", func(float64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: %v", order)
		}
	}
}

func TestScheduleRelative(t *testing.T) {
	var k Kernel
	var at float64
	if _, err := k.ScheduleAt(10, "outer", func(now float64) {
		if _, err := k.Schedule(5, "inner", func(now float64) { at = now }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if at != 15 {
		t.Errorf("relative event at %g want 15", at)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	var k Kernel
	if _, err := k.ScheduleAt(10, "x", func(float64) {}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if _, err := k.ScheduleAt(5, "past", func(float64) {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("want ErrPastEvent, got %v", err)
	}
	if _, err := k.ScheduleAt(math.NaN(), "nan", func(float64) {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("NaN time: want ErrPastEvent, got %v", err)
	}
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	e, err := k.ScheduleAt(3, "victim", func(float64) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !k.Cancel(e) {
		t.Error("first cancel should succeed")
	}
	if k.Cancel(e) {
		t.Error("second cancel should be a no-op")
	}
	if k.Cancel(Handle{}) {
		t.Error("zero-handle cancel should be a no-op")
	}
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("event should report canceled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var k Kernel
	var got []float64
	events := make([]Handle, 0, 20)
	for i := 0; i < 20; i++ {
		tm := float64(i)
		e, err := k.ScheduleAt(tm, "e", func(now float64) { got = append(got, now) })
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	// Cancel every third event.
	want := 0
	for i, e := range events {
		if i%3 == 1 {
			k.Cancel(e)
		} else {
			want++
		}
	}
	k.Run()
	if len(got) != want {
		t.Errorf("fired %d events, want %d", len(got), want)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("order violated after cancels: %v", got)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var k Kernel
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 10, 20} {
		tm := tm
		if _, err := k.ScheduleAt(tm, "e", func(now float64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(5)
	if len(fired) != 3 {
		t.Errorf("fired %d events before horizon, want 3", len(fired))
	}
	if k.Now() != 5 {
		t.Errorf("clock = %g want horizon 5", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("pending = %d want 2", k.Pending())
	}
	k.RunUntil(100)
	if len(fired) != 5 {
		t.Errorf("fired %d total, want 5", len(fired))
	}
}

func TestHalt(t *testing.T) {
	var k Kernel
	count := 0
	for i := 0; i < 10; i++ {
		if _, err := k.ScheduleAt(float64(i), "e", func(float64) {
			count++
			if count == 4 {
				k.Halt()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if count != 4 {
		t.Errorf("halt after 4: fired %d", count)
	}
	// Resume.
	k.Run()
	if count != 10 {
		t.Errorf("resume: fired %d want 10", count)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Error("Step on empty queue should report false")
	}
}

// Property: any random schedule (with nested re-scheduling and cancels)
// fires events in nondecreasing time order.
func TestPropertyRandomScheduleOrdered(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var k Kernel
		var fired []float64
		var pending []Handle
		for i := 0; i < 50; i++ {
			tm := rng.Float64() * 100
			e, err := k.ScheduleAt(tm, "p", func(now float64) {
				fired = append(fired, now)
				if rng.Float64() < 0.3 {
					_, _ = k.Schedule(rng.Float64()*10, "child", func(now float64) {
						fired = append(fired, now)
					})
				}
			})
			if err != nil {
				return false
			}
			pending = append(pending, e)
		}
		for _, e := range pending {
			if rng.Float64() < 0.2 {
				k.Cancel(e)
			}
		}
		k.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStateObservesCounters(t *testing.T) {
	var k Kernel
	if s := k.State(); s != (State{}) {
		t.Fatalf("zero kernel state = %+v", s)
	}
	k.Schedule(1, "a", func(float64) {})
	k.Schedule(2, "b", func(float64) {})
	if s := k.State(); s.Pending != 2 || s.Seq != 2 || s.Fired != 0 {
		t.Fatalf("after scheduling: %+v", s)
	}
	k.Step()
	if s := k.State(); s.Now != 1 || s.Fired != 1 || s.Pending != 1 {
		t.Fatalf("after one step: %+v", s)
	}
}

// Replaying a prefix with RunToFired and finishing with Run must land
// on the same final state as an uninterrupted Run — including when the
// schedule grows dynamically from inside callbacks.
func TestRunToFiredReplayMatchesStraightRun(t *testing.T) {
	build := func() *Kernel {
		var k Kernel
		var grow func(now float64)
		depth := 0
		grow = func(now float64) {
			if depth++; depth < 40 {
				k.Schedule(0.75, "grow", grow)
				k.Schedule(1.5, "leaf", func(float64) {})
			}
		}
		k.Schedule(1, "seed", grow)
		return &k
	}

	straight := build()
	straight.Run()
	want := straight.State()

	for target := uint64(1); target <= want.Fired; target++ {
		k := build()
		if err := k.RunToFired(target, 4, nil); err != nil {
			t.Fatalf("replay to %d: %v", target, err)
		}
		if got := k.State().Fired; got != target {
			t.Fatalf("replay to %d fired %d", target, got)
		}
		k.Run()
		if got := k.State(); got != want {
			t.Fatalf("replay to %d then Run: %+v != %+v", target, got, want)
		}
	}

	k := build()
	if err := k.RunToFired(want.Fired+1, 1, nil); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overshoot: want ErrExhausted, got %v", err)
	}
}

func TestRunToFiredHonorsCheck(t *testing.T) {
	var k Kernel
	for i := 0; i < 20; i++ {
		k.Schedule(float64(i), "e", func(float64) {})
	}
	stop := errors.New("stop")
	calls := 0
	err := k.RunToFired(20, 5, func() error {
		if calls++; calls == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("want check error, got %v", err)
	}
	if got := k.Fired(); got != 10 {
		t.Fatalf("stopped after %d events, want 10", got)
	}
}
