package vodalloc_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// piggyback miss-fallback, the quadrature resolution of the analytic
// model, the closed-form G(x)=∫F specialization, the δ buffer reserve,
// and the robustness of the model's uniform-position assumption across
// arrival rates. Each reports the quantity the ablation moves as a
// benchmark metric.

import (
	"fmt"
	"math"
	"testing"

	"vodalloc"
	"vodalloc/internal/analytic"
	"vodalloc/internal/dist"
	"vodalloc/internal/sim"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

func ablationSimConfig(seed int64) sim.Config {
	gam := dist.MustGamma(2, 4)
	think := dist.MustExponential(10)
	return sim.Config{
		L: 120, B: 24, N: 12, // low hit probability → many misses
		Rates:       vcr.Rates{PB: 1, FF: 3, RW: 3},
		ArrivalRate: 0.5,
		Profile:     workload.MixedProfile(gam, think),
		Horizon:     2500,
		Warmup:      300,
		Seed:        seed,
	}
}

// BenchmarkAblationPiggyback sweeps the piggyback slew fraction (0 =
// disabled) and reports the average dedicated-stream occupancy each
// policy leaves behind — the resource the paper economizes.
func BenchmarkAblationPiggyback(b *testing.B) {
	for _, slew := range []float64{0, 0.02, 0.05, 0.10} {
		name := fmt.Sprintf("slew=%.2f", slew)
		b.Run(name, func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				cfg := ablationSimConfig(int64(i + 1))
				cfg.Piggyback = slew > 0
				cfg.Slew = slew
				s, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				avg = res.AvgDedicated
			}
			b.ReportMetric(avg, "avgDedicated")
		})
	}
}

// BenchmarkAblationQuadrature sweeps the model's u-quadrature panels and
// reports the absolute error against a 256-panel reference — the
// accuracy/cost tradeoff of DefaultUPanels.
func BenchmarkAblationQuadrature(b *testing.B) {
	base := analytic.MustNew(analytic.Config{L: 120, B: 60, N: 30, RatePB: 1, RateFF: 3, RateRW: 3})
	gam := dist.MustGamma(2, 4)
	ref := base.WithUPanels(256).HitFF(gam)
	for _, panels := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("panels=%d", panels), func(b *testing.B) {
			m := base.WithUPanels(panels)
			var got float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got = m.HitFF(gam)
			}
			b.ReportMetric(math.Abs(got-ref), "absErr")
		})
	}
}

// BenchmarkAblationGridG compares the closed-form G(x)=∫₀ˣF path with
// the generic precomputed-grid fallback on the same distribution (the
// concrete type hidden), reporting their disagreement.
func BenchmarkAblationGridG(b *testing.B) {
	m := analytic.MustNew(analytic.Config{L: 120, B: 60, N: 30, RatePB: 1, RateFF: 3, RateRW: 3})
	exp := dist.MustExponential(8)
	closed := m.HitFF(exp)
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.HitFF(exp)
		}
	})
	b.Run("grid-fallback", func(b *testing.B) {
		var got float64
		for i := 0; i < b.N; i++ {
			got = m.HitFF(hidden{exp})
		}
		b.ReportMetric(math.Abs(got-closed), "absErr")
	})
}

// hidden masks a distribution's concrete type so the model takes the
// generic grid path.
type hidden struct{ dist.Distribution }

// BenchmarkAblationDelta sweeps the per-partition reserve δ and reports
// the buffer peak it adds — the B′ = B + nδ accounting of §3.1.
func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				cfg := ablationSimConfig(int64(i + 1))
				cfg.Delta = delta
				s, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				peak = res.BufferPeak
			}
			b.ReportMetric(peak, "bufferPeak")
		})
	}
}

// BenchmarkAblationArrivalRate probes the model's uniform-position
// assumption: the analytic P(hit) ignores λ entirely, so the measured
// model-vs-sim error across arrival rates quantifies how much that
// assumption costs.
func BenchmarkAblationArrivalRate(b *testing.B) {
	gam := dist.MustGamma(2, 4)
	model := analytic.MustNew(analytic.Config{L: 120, B: 60, N: 30, RatePB: 1, RateFF: 3, RateRW: 3})
	want, err := model.HitMix(analytic.Mix{PFF: 0.2, PRW: 0.2, PPAU: 0.6, FF: gam, RW: gam, PAU: gam})
	if err != nil {
		b.Fatal(err)
	}
	for _, lambda := range []float64{0.1, 0.5, 2.0} {
		b.Run(fmt.Sprintf("lambda=%.1f", lambda), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				res, err := vodalloc.Simulate(vodalloc.SimConfig{
					L: 120, B: 60, N: 30,
					Rates:       vodalloc.Rates{PB: 1, FF: 3, RW: 3},
					ArrivalRate: lambda,
					Profile:     workload.MixedProfile(gam, dist.MustExponential(15)),
					Horizon:     2500,
					Warmup:      300,
					Seed:        int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				gap = math.Abs(res.HitProbability() - want)
			}
			b.ReportMetric(gap, "absErrVsModel")
		})
	}
}
