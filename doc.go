// Package vodalloc reproduces "Buffer and I/O Resource Pre-allocation
// for Implementing Batching and Buffering Techniques for Video-on-Demand
// Systems" (Leung, Lui & Golubchik, ICDE 1997) as a Go library.
//
// A VOD server that serves popular movies with batching (periodic
// restarts sharing one I/O stream) and static partitioned buffering
// (each stream retains a window of recent frames in memory) supports VCR
// operations — fast-forward, rewind, pause — by temporarily moving the
// viewer onto dedicated resources. When the viewer resumes, the
// dedicated I/O stream can be released only if the resume position lands
// inside some partition's buffered window: a hit. This package provides
//
//   - the paper's analytic model of the hit probability
//     P(hit) = ξ(l, B, n, w, R_FF, R_PB, R_RW) under arbitrary
//     VCR-duration distributions (Eqs. 1–22), via NewModel;
//   - a discrete-event simulator of the full server — batch scheduling,
//     enrollment windows, VCR phases, piggyback merging — that validates
//     the model as in the paper's §4, via NewSimulator;
//   - the §5 resource pre-allocation and system-sizing optimizer:
//     per-movie feasible sets, minimum-buffer multi-movie plans, and
//     dollar-cost curves under a buffer/stream price ratio φ, via
//     PlanMinBuffer, FeasibleSet and CostCurve.
//
// # Quick start
//
//	cfg := vodalloc.Config{L: 120, B: 60, N: 30, RatePB: 1, RateFF: 3, RateRW: 3}
//	model, err := vodalloc.NewModel(cfg)
//	if err != nil { ... }
//	gamma, _ := vodalloc.NewGamma(2, 4) // the paper's skewed gamma, mean 8
//	p := model.HitFF(gamma)             // P(hit | FF)
//
// Units follow the paper: movie time and buffer sizes are expressed in
// minutes of video; an "I/O stream" is the bandwidth needed to play one
// movie in real time.
package vodalloc
