// Command vodsim runs the discrete-event VOD server simulator once and
// prints the measured hit probability, waiting times and resource
// occupancy, optionally next to the analytic model's prediction.
//
// Usage:
//
//	vodsim -l 120 -b 60 -n 30 -lambda 0.5 -horizon 6000
//	vodsim -l 120 -w 1 -n 60 -dur gamma:2:4 -piggyback -compare
//	vodsim -l 120 -b 60 -n 30 -streams 60 -faults "fail@1000:d0,repair@2000:d0"
//	vodsim -l 120 -b 60 -n 30 -streams 60 -faults "rand:7:2000:200:6"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vodalloc/internal/analytic"
	"vodalloc/internal/cliutil"
	"vodalloc/internal/dist"
	"vodalloc/internal/faults"
	"vodalloc/internal/sim"
	"vodalloc/internal/trace"
	"vodalloc/internal/vcr"
)

func main() {
	l := flag.Float64("l", 120, "movie length, minutes")
	b := flag.Float64("b", -1, "total playback buffer, movie-minutes")
	w := flag.Float64("w", -1, "maximum waiting time (alternative to -b)")
	n := flag.Int("n", 30, "number of I/O streams / partitions")
	lambda := flag.Float64("lambda", 0.5, "Poisson arrival rate, viewers/minute")
	durSpec := flag.String("dur", "gamma:2:4", "VCR duration distribution spec")
	thinkSpec := flag.String("think", "exp:15", "think-time distribution spec")
	pFF := flag.Float64("pff", 0.2, "mix probability of FF")
	pRW := flag.Float64("prw", 0.2, "mix probability of RW")
	pPAU := flag.Float64("ppau", 0.6, "mix probability of PAU")
	rFF := flag.Float64("rff", 3, "fast-forward rate (multiples of playback)")
	rRW := flag.Float64("rrw", 3, "rewind rate (multiples of playback)")
	horizon := flag.Float64("horizon", 6000, "simulated minutes")
	warmup := flag.Float64("warmup", 500, "measurement warmup, minutes")
	seed := flag.Int64("seed", 1, "random seed")
	piggyback := flag.Bool("piggyback", false, "enable piggyback merging after misses")
	slew := flag.Float64("slew", 0.05, "piggyback display-rate slew fraction")
	maxDed := flag.Int("maxdedicated", 0, "cap on dedicated streams (0 = unlimited)")
	streams := flag.Int("streams", 0, "total provisioned I/O streams across batch and VCR (0 = uncapped)")
	faultSpec := flag.String("faults", "", `fault schedule: "fail@T:dD,repair@T:dD,glitch@T:N,bufloss@T" or "rand:seed:mtbf:mttr:disks"`)
	compare := flag.Bool("compare", true, "print the analytic model prediction alongside")
	tracePath := flag.String("trace", "", "write a structured event trace to this file (\"-\" for stdout)")
	reps := flag.Int("replications", 1, "independent replications (seeds seed..seed+R-1, run concurrently)")
	flag.Parse()

	var buf float64
	switch {
	case *b >= 0 && *w >= 0:
		fatal(fmt.Errorf("give only one of -b and -w"))
	case *w >= 0:
		buf = *l - float64(*n)**w
		if buf < 0 {
			fatal(fmt.Errorf("infeasible -w/-n pair: B = l − n·w = %.2f", buf))
		}
	case *b >= 0:
		buf = *b
	default:
		fatal(fmt.Errorf("give one of -b or -w"))
	}

	dur, err := cliutil.ParseDist(*durSpec)
	if err != nil {
		fatal(err)
	}
	think, err := cliutil.ParseDist(*thinkSpec)
	if err != nil {
		fatal(err)
	}

	var tracer trace.Tracer
	if *tracePath != "" {
		sink := os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sink = f
		}
		tw := &trace.Writer{W: sink}
		defer func() {
			if tw.Err != nil {
				fmt.Fprintln(os.Stderr, "vodsim: trace write:", tw.Err)
			}
		}()
		tracer = tw
	}

	var sched faults.Schedule
	if *faultSpec != "" {
		if strings.HasPrefix(*faultSpec, "rand:") {
			sched, err = faults.ParseRandom(*faultSpec, *horizon)
		} else {
			sched, err = faults.Parse(*faultSpec)
		}
		if err != nil {
			fatal(err)
		}
	}

	cfg := sim.Config{
		L: *l, B: buf, N: *n,
		Tracer:      tracer,
		Rates:       vcr.Rates{PB: 1, FF: *rFF, RW: *rRW},
		ArrivalRate: *lambda,
		Profile: vcr.Profile{
			PFF: *pFF, PRW: *pRW, PPAU: *pPAU,
			DurFF: dur, DurRW: dur, DurPAU: dur,
			Think: think,
		},
		Horizon: *horizon, Warmup: *warmup, Seed: *seed,
		Piggyback: *piggyback, Slew: *slew,
		MaxDedicated: *maxDed,
		TotalStreams: *streams,
		Faults:       sched,
	}
	if *reps > 1 {
		if cfg.Tracer != nil {
			fatal(fmt.Errorf("-trace is incompatible with -replications"))
		}
		rep, err := sim.Replicate(cfg, *reps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replicated %d × %g min of l=%g B=%.1f n=%d (w=%.3f)\n",
			*reps, *horizon, *l, buf, *n, (*l-buf)/float64(*n))
		fmt.Printf("pooled hit=%.4f over %d resumes; replication CI95 ±%.4f\n",
			rep.HitProbability(), rep.PooledHits.N(), rep.HitCI95())
		fmt.Printf("dedicated avg=%.2f; batch avg=%.2f; max wait=%.3f\n",
			rep.AvgDedicated.Mean(), rep.AvgBatch.Mean(), rep.MaxWait)
		if *compare {
			printModelComparison(*l, buf, *n, *rFF, *rRW, *pFF, *pRW, *pPAU, dur, rep.HitProbability())
		}
		return
	}

	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %g min of l=%g B=%.1f n=%d (w=%.3f)\n",
		*horizon, *l, buf, *n, (*l-buf)/float64(*n))
	fmt.Print(res.Summary())

	if *compare {
		printModelComparison(*l, buf, *n, *rFF, *rRW, *pFF, *pRW, *pPAU, dur, res.HitProbability())
	}
}

// printModelComparison prints the analytic prediction next to a measured
// hit probability.
func printModelComparison(l, b float64, n int, rFF, rRW, pFF, pRW, pPAU float64, dur dist.Distribution, measured float64) {
	model, err := analytic.New(analytic.Config{
		L: l, B: b, N: n, RatePB: 1, RateFF: rFF, RateRW: rRW,
	})
	if err != nil {
		fatal(err)
	}
	p, err := model.HitMix(analytic.Mix{
		PFF: pFF, PRW: pRW, PPAU: pPAU, FF: dur, RW: dur, PAU: dur,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("analytic model: P(hit) = %.4f (sim %.4f, Δ %+.4f)\n", p, measured, measured-p)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodsim:", err)
	os.Exit(1)
}
