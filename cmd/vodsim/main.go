// Command vodsim runs the discrete-event VOD server simulator once and
// prints the measured hit probability, waiting times and resource
// occupancy, optionally next to the analytic model's prediction.
//
// Usage:
//
//	vodsim -l 120 -b 60 -n 30 -lambda 0.5 -horizon 6000
//	vodsim -l 120 -w 1 -n 60 -dur gamma:2:4 -piggyback -compare
//	vodsim -l 120 -b 60 -n 30 -streams 60 -faults "fail@1000:d0,repair@2000:d0"
//	vodsim -l 120 -b 60 -n 30 -streams 60 -faults "rand:7:2000:200:6"
//	vodsim -l 120 -b 30 -n 30 -lambda 50000 -engine fluid -compare=false
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vodalloc/internal/analytic"
	"vodalloc/internal/checkpoint"
	"vodalloc/internal/cliutil"
	"vodalloc/internal/dist"
	"vodalloc/internal/faults"
	"vodalloc/internal/sim"
	"vodalloc/internal/trace"
	"vodalloc/internal/vcr"
)

func main() {
	l := flag.Float64("l", 120, "movie length, minutes")
	b := flag.Float64("b", -1, "total playback buffer, movie-minutes")
	w := flag.Float64("w", -1, "maximum waiting time (alternative to -b)")
	n := flag.Int("n", 30, "number of I/O streams / partitions")
	lambda := flag.Float64("lambda", 0.5, "Poisson arrival rate, viewers/minute")
	durSpec := flag.String("dur", "gamma:2:4", "VCR duration distribution spec")
	thinkSpec := flag.String("think", "exp:15", "think-time distribution spec")
	pFF := flag.Float64("pff", 0.2, "mix probability of FF")
	pRW := flag.Float64("prw", 0.2, "mix probability of RW")
	pPAU := flag.Float64("ppau", 0.6, "mix probability of PAU")
	rFF := flag.Float64("rff", 3, "fast-forward rate (multiples of playback)")
	rRW := flag.Float64("rrw", 3, "rewind rate (multiples of playback)")
	horizon := flag.Float64("horizon", 6000, "simulated minutes")
	warmup := flag.Float64("warmup", 500, "measurement warmup, minutes")
	seed := flag.Int64("seed", 1, "random seed")
	piggyback := flag.Bool("piggyback", false, "enable piggyback merging after misses")
	slew := flag.Float64("slew", 0.05, "piggyback display-rate slew fraction")
	maxDed := flag.Int("maxdedicated", 0, "cap on dedicated streams (0 = unlimited)")
	streams := flag.Int("streams", 0, "total provisioned I/O streams across batch and VCR (0 = uncapped)")
	faultSpec := flag.String("faults", "", `fault schedule: "fail@T:dD,repair@T:dD,glitch@T:N,bufloss@T" or "rand:seed:mtbf:mttr:disks"`)
	compare := flag.Bool("compare", true, "print the analytic model prediction alongside")
	tracePath := flag.String("trace", "", "write a structured event trace to this file (\"-\" for stdout)")
	reps := flag.Int("replications", 1, "independent replications (seeds seed..seed+R-1, run concurrently)")
	engine := flag.String("engine", "des", "simulation backend: des|fluid|hybrid")
	fluidThreshold := flag.Float64("fluid-threshold", 0, "hybrid mode: arrival rate at or above which a movie runs fluid")
	particleRate := flag.Float64("particle-rate", 0, "fluid shadow-viewer rate per minute (0 = default)")
	resumeDir := flag.String("resume", "", "checkpoint directory: journal progress there and resume a killed run")
	ckptEvery := flag.Int("checkpoint-every", 250000, "events between single-run checkpoints with -resume")
	flag.Parse()

	var buf float64
	switch {
	case *b >= 0 && *w >= 0:
		fatal(fmt.Errorf("give only one of -b and -w"))
	case *w >= 0:
		buf = *l - float64(*n)**w
		if buf < 0 {
			fatal(fmt.Errorf("infeasible -w/-n pair: B = l − n·w = %.2f", buf))
		}
	case *b >= 0:
		buf = *b
	default:
		fatal(fmt.Errorf("give one of -b or -w"))
	}

	dur, err := cliutil.ParseDist(*durSpec)
	if err != nil {
		fatal(err)
	}
	think, err := cliutil.ParseDist(*thinkSpec)
	if err != nil {
		fatal(err)
	}

	var tracer trace.Tracer
	if *tracePath != "" {
		sink := os.Stdout
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sink = f
		}
		tw := &trace.Writer{W: sink}
		defer func() {
			if tw.Err != nil {
				fmt.Fprintln(os.Stderr, "vodsim: trace write:", tw.Err)
			}
		}()
		tracer = tw
	}

	var sched faults.Schedule
	if *faultSpec != "" {
		if strings.HasPrefix(*faultSpec, "rand:") {
			sched, err = faults.ParseRandom(*faultSpec, *horizon)
		} else {
			sched, err = faults.Parse(*faultSpec)
		}
		if err != nil {
			fatal(err)
		}
	}

	cfg := sim.Config{
		L: *l, B: buf, N: *n,
		Tracer:      tracer,
		Rates:       vcr.Rates{PB: 1, FF: *rFF, RW: *rRW},
		ArrivalRate: *lambda,
		Profile: vcr.Profile{
			PFF: *pFF, PRW: *pRW, PPAU: *pPAU,
			DurFF: dur, DurRW: dur, DurPAU: dur,
			Think: think,
		},
		Horizon: *horizon, Warmup: *warmup, Seed: *seed,
		Piggyback: *piggyback, Slew: *slew,
		MaxDedicated:   *maxDed,
		TotalStreams:   *streams,
		Faults:         sched,
		Engine:         sim.Engine(*engine),
		FluidThreshold: *fluidThreshold,
		ParticleRate:   *particleRate,
	}
	if *resumeDir != "" {
		if cfg.Tracer != nil {
			// A resumed run replays silently to its boundary, so a trace
			// would be missing everything before the crash.
			fatal(fmt.Errorf("-trace is incompatible with -resume"))
		}
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *reps > 1 {
		if cfg.Tracer != nil {
			fatal(fmt.Errorf("-trace is incompatible with -replications"))
		}
		var rep *sim.Replication
		var err error
		if *resumeDir != "" {
			var info sim.ResumeInfo
			rep, info, err = sim.ReplicateResumableCtx(context.Background(), cfg, *reps, *resumeDir)
			if err == nil && (info.Resumed > 0 || info.TornBytes > 0) {
				fmt.Fprintf(os.Stderr, "vodsim: resumed %d of %d replications from %s (torn tail: %d bytes)\n",
					info.Resumed, *reps, *resumeDir, info.TornBytes)
			}
		} else {
			rep, err = sim.Replicate(cfg, *reps)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replicated %d × %g min of l=%g B=%.1f n=%d (w=%.3f)\n",
			*reps, *horizon, *l, buf, *n, (*l-buf)/float64(*n))
		fmt.Printf("pooled hit=%.4f over %d resumes; replication CI95 ±%.4f\n",
			rep.HitProbability(), rep.PooledHits.N(), rep.HitCI95())
		fmt.Printf("dedicated avg=%.2f; batch avg=%.2f; max wait=%.3f\n",
			rep.AvgDedicated.Mean(), rep.AvgBatch.Mean(), rep.MaxWait)
		if *compare {
			printModelComparison(*l, buf, *n, *rFF, *rRW, *pFF, *pRW, *pPAU, dur, rep.HitProbability())
		}
		return
	}

	s, err := sim.New(cfg)
	if err != nil {
		fatal(err)
	}
	var res *sim.Result
	if *resumeDir != "" {
		res, err = runResumable(s, cfg, *resumeDir, *ckptEvery)
	} else {
		res, err = s.Run()
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %g min of l=%g B=%.1f n=%d (w=%.3f)\n",
		*horizon, *l, buf, *n, (*l-buf)/float64(*n))
	fmt.Print(res.Summary())

	if *compare {
		printModelComparison(*l, buf, *n, *rFF, *rRW, *pFF, *pRW, *pPAU, dur, res.HitProbability())
	}
}

// runResumable executes a single run with periodic checkpoints in dir,
// resuming from an existing checkpoint first. The snapshot payload is
// the run's configuration identity followed by the 24-byte checkpoint;
// the identity check refuses a snapshot from a different configuration
// before any replay happens. On success the checkpoint is removed — a
// finished run has nothing left to resume.
func runResumable(s *sim.Simulator, cfg sim.Config, dir string, every int) (*sim.Result, error) {
	identity := checkpoint.Identity("vodsim.run", cfg.IdentityString())
	path := filepath.Join(dir, "sim.ckpt")
	sink := func(cp sim.Checkpoint) error {
		b, err := cp.MarshalBinary()
		if err != nil {
			return err
		}
		payload := append(binary.BigEndian.AppendUint64(nil, identity), b...)
		return checkpoint.WriteSnapshot(path, checkpoint.FormatVersion, checkpoint.KindSimRun, payload)
	}

	var res *sim.Result
	kind, payload, err := checkpoint.ReadSnapshot(path, checkpoint.FormatVersion)
	switch {
	case errors.Is(err, os.ErrNotExist):
		res, err = s.RunCheckpointedCtx(context.Background(), every, sink)
	case err != nil:
		return nil, err
	default:
		if kind != checkpoint.KindSimRun || len(payload) != 32 {
			return nil, fmt.Errorf("%s: not a vodsim run checkpoint", path)
		}
		if got := binary.BigEndian.Uint64(payload); got != identity {
			return nil, fmt.Errorf("%s: %w: checkpoint was written by a different run configuration", path, checkpoint.ErrIdentity)
		}
		var cp sim.Checkpoint
		if err := cp.UnmarshalBinary(payload[8:]); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "vodsim: resuming from checkpoint at t=%.2f (%d events) in %s\n", cp.Now, cp.Fired, dir)
		res, err = s.ResumeCheckpointedCtx(context.Background(), cp, every, sink)
	}
	if err != nil {
		return nil, err
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		fmt.Fprintln(os.Stderr, "vodsim: drop finished checkpoint:", err)
	}
	return res, nil
}

// printModelComparison prints the analytic prediction next to a measured
// hit probability.
func printModelComparison(l, b float64, n int, rFF, rRW, pFF, pRW, pPAU float64, dur dist.Distribution, measured float64) {
	model, err := analytic.New(analytic.Config{
		L: l, B: b, N: n, RatePB: 1, RateFF: rFF, RateRW: rRW,
	})
	if err != nil {
		fatal(err)
	}
	p, err := model.HitMix(analytic.Mix{
		PFF: pFF, PRW: pRW, PPAU: pPAU, FF: dur, RW: dur, PAU: dur,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("analytic model: P(hit) = %.4f (sim %.4f, Δ %+.4f)\n", p, measured, measured-p)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodsim:", err)
	os.Exit(1)
}
