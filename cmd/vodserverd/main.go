// Command vodserverd serves the model, optimizer and simulator over a
// JSON/HTTP API (see internal/httpapi for the endpoint catalogue), so
// the reproduction is scriptable from any language.
//
// Usage:
//
//	vodserverd -addr :8080 -timeout 30s -max-body 1048576 -max-inflight 4 -workers 8
//
//	curl -s localhost:8080/v1/hit -d '{
//	    "config": {"l": 120, "b": 60, "n": 30},
//	    "profile": {"dur": "gamma:2:4"}
//	}'
//
// The handler stack recovers panics into 500s, times out slow requests,
// rejects oversized bodies with 413, and sheds excess concurrent
// simulations with 503 + Retry-After. The access log carries the status
// code and outcome class (ok, shed, recovered-panic, ...) per request.
// The process shuts down cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodalloc/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes (413 beyond)")
	maxInflight := flag.Int("max-inflight", 4, "concurrent simulate/replicate cap (503 beyond)")
	workers := flag.Int("workers", 0, "shared sizing-sweep worker pool across plan/curve requests (0 = GOMAXPROCS)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	srv := &http.Server{
		Addr: *addr,
		Handler: httpapi.New(httpapi.Options{
			Timeout:        *timeout,
			MaxBodyBytes:   *maxBody,
			MaxInflightSim: *maxInflight,
			Workers:        *workers,
			Log:            logger,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vodserverd listening on %s (timeout=%s max-body=%d max-inflight=%d)",
			*addr, *timeout, *maxBody, *maxInflight)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vodserverd:", err)
			os.Exit(1)
		}
	}
}
