// Command vodserverd serves the model, optimizer and simulator over a
// JSON/HTTP API (see internal/httpapi for the endpoint catalogue), so
// the reproduction is scriptable from any language.
//
// Usage:
//
//	vodserverd -addr :8080 -timeout 30s -max-body 1048576 -max-inflight 4 -workers 8 -drain 10s
//
//	curl -s localhost:8080/v1/hit -d '{
//	    "config": {"l": 120, "b": 60, "n": 30},
//	    "profile": {"dur": "gamma:2:4"}
//	}'
//
// The handler stack recovers panics into 500s, times out slow requests,
// rejects oversized bodies with 413, sheds excess concurrent simulations
// with 503 + Retry-After, and trips a circuit breaker to fast-fail 503s
// after repeated simulation timeouts. /healthz answers whenever the
// process is alive; /readyz flips to 503 during startup and drain;
// /statusz reports goroutine, in-flight and pool gauges. The access log
// carries the status code and outcome class (ok, shed, recovered-panic,
// ...) per request.
//
// On SIGINT/SIGTERM the process drains: readiness fails, new API
// requests are shed with 503, and in-flight requests get up to -drain
// to finish before the listener closes.
//
// With -cache-file the sizing evaluator's memo cache is loaded from the
// given snapshot at startup, autosaved as it grows, and saved back once
// the drain completes, so a restarted server answers repeat sizing
// queries from cache instead of recomputing. Both outcomes are logged
// and reported on /statusz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers mounted only behind the -pprof flag
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodalloc/internal/checkpoint"
	"vodalloc/internal/httpapi"
	"vodalloc/internal/sizing"
)

func run() error {
	addr := flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for test harnesses)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request wall-clock budget")
	drain := flag.Duration("drain", 10*time.Second, "how long in-flight requests get to finish on shutdown")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes (413 beyond)")
	maxInflight := flag.Int("max-inflight", 4, "concurrent simulate/replicate cap (503 beyond)")
	workers := flag.Int("workers", 0, "shared sizing-sweep worker pool across plan/curve requests (0 = GOMAXPROCS)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive simulation timeouts that trip the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long the tripped breaker fast-fails before probing")
	cacheFile := flag.String("cache-file", "", "persist the sizing evaluator's memo cache to this snapshot (loaded at startup, saved on drain)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling endpoints; keep off unless the listener is trusted)")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	state := httpapi.NewState()
	eval := &sizing.Evaluator{}
	cacheState := &httpapi.CacheState{}
	if *cacheFile != "" {
		switch n, err := eval.LoadCache(*cacheFile); {
		case err == nil:
			cacheState.RecordLoad(n, nil)
			log.Printf("cache: loaded %d model evaluations from %s", n, *cacheFile)
		case errors.Is(err, os.ErrNotExist):
			cacheState.RecordLoad(0, nil)
			log.Printf("cache: cold start, %s does not exist yet", *cacheFile)
		default:
			// An unusable snapshot (corrupt, truncated, wrong version) is
			// not fatal: start cold and overwrite it on the next save.
			cacheState.RecordLoad(0, err)
			log.Printf("cache: ignoring unusable snapshot %s: %v", *cacheFile, err)
		}
		eval.AutoSave(*cacheFile, 256)
	}
	var handler http.Handler = httpapi.New(httpapi.Options{
		Timeout:          *timeout,
		MaxBodyBytes:     *maxBody,
		MaxInflightSim:   *maxInflight,
		Workers:          *workers,
		Log:              logger,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		State:            state,
		Evaluator:        eval,
		Cache:            cacheState,
	})
	if *pprofOn {
		// The pprof import registers on DefaultServeMux; only a -pprof
		// server routes the debug prefix there, and profile requests skip
		// the API middleware (its per-request timeout would truncate
		// 30-second CPU profiles).
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof: profiling endpoints enabled under /debug/pprof/")
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written after the listener is bound, so a harness reading the
		// file can connect immediately; atomically, so it never reads a
		// partial address.
		if err := checkpoint.WriteFileAtomic(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write addr-file: %w", err)
		}
	}
	state.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vodserverd listening on %s (timeout=%s drain=%s max-body=%d max-inflight=%d)",
			bound, *timeout, *drain, *maxBody, *maxInflight)
		errCh <- srv.Serve(ln)
	}()

	select {
	case <-ctx.Done():
		state.BeginDrain()
		log.Printf("draining: %d request(s) in flight, budget %s", state.Inflight(), *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain expired: %v (%d request(s) abandoned)", err, state.Inflight())
			srv.Close()
		} else {
			log.Printf("drain complete: %d request(s) in flight", state.Inflight())
		}
		saveCache(eval, cacheState, *cacheFile)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	return nil
}

// saveCache persists the evaluator cache after the drain, so everything
// computed during this process's lifetime survives the restart.
func saveCache(eval *sizing.Evaluator, cs *httpapi.CacheState, path string) {
	if path == "" {
		return
	}
	n, err := eval.SaveCache(path)
	cs.RecordSave(n, err)
	if err != nil {
		log.Printf("cache: save to %s failed: %v", path, err)
		return
	}
	log.Printf("cache: saved %d model evaluations to %s", n, path)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodserverd:", err)
		os.Exit(1)
	}
}
