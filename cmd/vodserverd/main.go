// Command vodserverd serves the model, optimizer and simulator over a
// JSON/HTTP API (see internal/httpapi for the endpoint catalogue), so
// the reproduction is scriptable from any language.
//
// Usage:
//
//	vodserverd -addr :8080
//
//	curl -s localhost:8080/v1/hit -d '{
//	    "config": {"l": 120, "b": 60, "n": 30},
//	    "profile": {"dur": "gamma:2:4"}
//	}'
//
// The process shuts down cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodalloc/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(httpapi.NewMux()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vodserverd listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vodserverd:", err)
			os.Exit(1)
		}
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
