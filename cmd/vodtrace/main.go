// Command vodtrace analyzes a simulator event trace (produced with
// vodsim -trace) offline: per-movie arrival/departure flows, resume hit
// rates, phase-1 durations, merges and blocking.
//
// Usage:
//
//	vodsim -b 60 -n 30 -trace run.log
//	vodtrace run.log           # or: vodtrace - < run.log
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"vodalloc/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: vodtrace <file|->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	an := trace.NewAnalyzer()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lines, skipped := 0, 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ev, err := trace.ParseLine(line)
		if err != nil {
			skipped++
			continue
		}
		an.Add(ev)
		lines++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if lines == 0 {
		fatal(fmt.Errorf("no parseable trace lines (skipped %d)", skipped))
	}
	fmt.Printf("parsed %d events (%d unparseable lines skipped)\n", lines, skipped)
	fmt.Print(an.Summary())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodtrace:", err)
	os.Exit(1)
}
