// Command vodchaos soaks a live vodserverd with hostile traffic and
// asserts the serving invariants the hardened stack promises. It is the
// closed-loop check that the resilience machinery — request timeouts,
// load shedding, the circuit breaker, cancellation propagation and the
// drain path — actually composes: after minutes of mixed load, client
// abandonment and a mid-run SIGTERM, the server must end with zero
// leaked pool tokens, zero in-flight requests, a recovered breaker and
// a goroutine count back at baseline.
//
// Usage:
//
//	vodserverd -addr 127.0.0.1:0 -addr-file /tmp/addr &
//	vodchaos -addr "$(cat /tmp/addr)" -dur 30s -clients 8 -sigterm-pid $!
//
// Traffic mix per client: fast model hits, small plans, big plans
// abandoned after 5–50ms (exercising cancellation), curves, simulations
// and replications (exercising the bulkhead and breaker), oversized
// bodies (413), malformed JSON (400) and wrong methods (405). Any 500,
// or any response outside the per-op accept set, is a violation.
//
// With -sigterm-pid the harness sends SIGTERM after the soak, verifies
// new requests are shed cleanly while the server drains, and waits for
// the process to exit. Exit status is nonzero if any violation occurred.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vodalloc/internal/httpapi"
	"vodalloc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodchaos:", err)
		os.Exit(1)
	}
}

// harness is the shared state of one soak.
type harness struct {
	addr   string
	client *http.Client
	rng    struct{ seed int64 }

	draining atomic.Bool // set once SIGTERM has been sent

	mu         sync.Mutex
	opCounts   map[string]int
	violations []string
}

func (h *harness) count(op string) {
	h.mu.Lock()
	h.opCounts[op]++
	h.mu.Unlock()
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

func run() error {
	addr := flag.String("addr", "", "server address host:port (required)")
	dur := flag.Duration("dur", 30*time.Second, "soak duration")
	clients := flag.Int("clients", 8, "concurrent traffic generators")
	seed := flag.Int64("seed", 1, "traffic randomness seed")
	settle := flag.Duration("settle", 10*time.Second, "how long the server gets to return to baseline after the soak")
	slack := flag.Int("goroutine-slack", 32, "allowed goroutine growth over baseline after settling")
	sigtermPid := flag.Int("sigterm-pid", 0, "after the soak, SIGTERM this pid and verify a clean drain (0 = skip)")
	exitWait := flag.Duration("exit-wait", 20*time.Second, "how long the SIGTERMed server gets to exit")
	flag.Parse()
	if *addr == "" {
		return errors.New("-addr is required")
	}

	h := &harness{
		addr:     *addr,
		client:   &http.Client{Timeout: 2 * time.Minute},
		opCounts: map[string]int{},
	}
	h.rng.seed = *seed

	baseline, err := h.waitForServer(10 * time.Second)
	if err != nil {
		return fmt.Errorf("server not reachable at %s: %w", *addr, err)
	}
	log.Printf("baseline: goroutines=%d simCap=%d workerCap=%d breaker=%s",
		baseline.Goroutines, baseline.SimCap, baseline.WorkerCap, baseline.Breaker)

	log.Printf("soaking %s with %d clients for %s", *addr, *clients, *dur)
	deadline := time.Now().Add(*dur)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h.trafficLoop(rand.New(rand.NewSource(*seed+int64(id))), deadline)
		}(i)
	}
	wg.Wait()
	h.client.CloseIdleConnections()

	final, ok := h.settleCheck(baseline, *settle, *slack)
	if ok {
		log.Printf("settled: goroutines=%d (baseline %d), inflight=0, tokens=0, breaker=%s",
			final.Goroutines, baseline.Goroutines, final.Breaker)
	}

	h.grayPhase()
	h.brownoutPhase()

	if *sigtermPid != 0 {
		h.sigtermPhase(*sigtermPid, *exitWait)
	}

	h.report()
	if n := len(h.violations); n > 0 {
		return fmt.Errorf("%d invariant violation(s)", n)
	}
	return nil
}

// waitForServer polls /statusz until the server answers, returning the
// baseline gauges.
func (h *harness) waitForServer(wait time.Duration) (httpapi.StatusResponse, error) {
	deadline := time.Now().Add(wait)
	for {
		st, err := h.status()
		if err == nil {
			return st, nil
		}
		if time.Now().After(deadline) {
			return httpapi.StatusResponse{}, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (h *harness) status() (httpapi.StatusResponse, error) {
	resp, err := h.client.Get("http://" + h.addr + "/statusz")
	if err != nil {
		return httpapi.StatusResponse{}, err
	}
	defer resp.Body.Close()
	var st httpapi.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return httpapi.StatusResponse{}, err
	}
	return st, nil
}

// op is one traffic kind: a request generator plus the set of statuses
// it may legitimately receive. weight biases the mix.
type op struct {
	name   string
	weight int
	// cancelWithin, when positive, bounds the request with a random
	// client-side deadline in (0, cancelWithin] so abandonment is part
	// of the op's contract.
	cancelWithin time.Duration
	method       string
	path         string
	body         func(r *rand.Rand) []byte
	accept       []int
}

func (h *harness) ops() []op {
	small := func(r *rand.Rand) []byte {
		return []byte(`{"config":{"l":120,"b":60,"n":30},"profile":{}}`)
	}
	return []op{
		{name: "hit", weight: 25, method: http.MethodPost, path: "/v1/hit",
			body: small, accept: []int{200, 503}},
		{name: "plan-small", weight: 8, method: http.MethodPost, path: "/v1/plan",
			body:   func(r *rand.Rand) []byte { return planBody(2, 0) },
			accept: []int{200, 503}},
		{name: "plan-canceled", weight: 15, method: http.MethodPost, path: "/v1/plan",
			cancelWithin: 50 * time.Millisecond,
			body:         func(r *rand.Rand) []byte { return planBody(60, r.Intn(1000)) },
			accept:       []int{200, 503}},
		{name: "curve", weight: 5, method: http.MethodPost, path: "/v1/curve",
			body: func(r *rand.Rand) []byte {
				return []byte(`{"movies":[{"name":"c","length":120,"wait":0.5,"targetHit":0.8,"dur":"gamma:2:4"}],"phi":3,"maxPoints":10}`)
			},
			accept: []int{200, 503}},
		{name: "simulate", weight: 15, method: http.MethodPost, path: "/v1/simulate",
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"horizon":1500,"seed":%d}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "replicate", weight: 4, method: http.MethodPost, path: "/v1/replicate",
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"horizon":800,"seed":%d,"replications":3}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "oversize", weight: 6, method: http.MethodPost, path: "/v1/hit",
			body:   func(r *rand.Rand) []byte { return oversizeBody },
			accept: []int{413, 503}},
		{name: "malformed", weight: 8, method: http.MethodPost, path: "/v1/hit",
			body:   func(r *rand.Rand) []byte { return []byte(`{"config":`) },
			accept: []int{400, 503}},
		{name: "wrong-method", weight: 6, method: http.MethodGet, path: "/v1/hit",
			body: nil, accept: []int{405, 503}},
		{name: "sim-canceled", weight: 8, method: http.MethodPost, path: "/v1/simulate",
			cancelWithin: 50 * time.Millisecond,
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"config":{"l":120,"b":60,"n":30},"profile":{},"lambda":0.5,"horizon":20000,"seed":%d}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "cluster-plan", weight: 5, method: http.MethodPost, path: "/v1/cluster/plan",
			// Varying the catalog size keeps part of the load outside
			// the sizing memo cache, like plan-canceled does for /v1/plan.
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(`{"zipfMovies":%d,"nodes":2,"replicas":2,"hotMovies":1}`,
					2+r.Intn(4)))
			},
			accept: []int{200, 503}},
		{name: "cluster-oversize", weight: 3, method: http.MethodPost, path: "/v1/cluster/simulate",
			body:   func(r *rand.Rand) []byte { return clusterOversizeBody },
			accept: []int{413, 503}},
		{name: "cluster-sim-canceled", weight: 5, method: http.MethodPost, path: "/v1/cluster/simulate",
			cancelWithin: 50 * time.Millisecond,
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"zipfMovies":3,"nodes":4,"lambda":1.0,"horizon":8000,"seed":%d}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "cluster-churn", weight: 4, method: http.MethodPost, path: "/v1/cluster/churn",
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"zipfMovies":3,"nodes":2,"replicas":2,"hotMovies":1,"lambda":0.5,"horizon":600,"warmup":60,"flash":"m01@200:3","budgetMB":20000,"seed":%d}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "cluster-churn-gray", weight: 3, method: http.MethodPost, path: "/v1/cluster/churn",
			body: func(r *rand.Rand) []byte {
				return []byte(fmt.Sprintf(
					`{"zipfMovies":3,"nodes":2,"replicas":2,"headroom":1.6,"lambda":0.5,"horizon":600,"warmup":60,"frozen":true,"gray":"slow:node0@100-500:15","policy":"hedge","seed":%d}`,
					r.Int63n(1<<30)+1))
			},
			accept: []int{200, 503}},
		{name: "cluster-churn-gray-bad", weight: 2, method: http.MethodPost, path: "/v1/cluster/churn",
			body: func(r *rand.Rand) []byte {
				return []byte(`{"zipfMovies":3,"nodes":2,"lambda":0.5,"horizon":500,"gray":"slow:node0@100:NaN","policy":"hedge"}`)
			},
			accept: []int{400, 503}},
	}
}

// clusterOversizeBody exceeds the body cap on the cluster simulate
// route: a structurally valid request padded past 1 MiB, so only the
// size limiter can be the thing that rejects it.
var clusterOversizeBody = []byte(`{"zipfMovies":3,"nodes":2,"lambda":0.5,"horizon":500,` +
	`"fail":"` + strings.Repeat("x", 1<<20+1024) + `"}`)

// oversizeBody exceeds the server's default 1 MiB body cap: valid JSON
// shape, so only the limiter can reject it.
var oversizeBody = []byte(`{"config":{"l":120,"b":60,"n":30},"profile":{},` +
	`"breakdown":false,"pad":"` + strings.Repeat("x", 1<<20+1024) + `"}`)

// planBody builds a /v1/plan request over n movies; salt varies the
// lengths so repeated big plans defeat the server-side memo cache and
// stay expensive (the point of the canceled-plan op).
func planBody(n, salt int) []byte {
	req := httpapi.PlanRequest{}
	for i := 0; i < n; i++ {
		req.Movies = append(req.Movies, workload.MovieSpec{
			Name:      fmt.Sprintf("chaos-%d-%d", salt, i),
			Length:    130 + float64((salt+i)%200),
			Wait:      0.5,
			TargetHit: 0.8,
			Dur:       "gamma:2:4",
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return b
}

// trafficLoop fires weighted random ops until the deadline.
func (h *harness) trafficLoop(r *rand.Rand, deadline time.Time) {
	ops := h.ops()
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	for time.Now().Before(deadline) {
		pick := r.Intn(total)
		var chosen op
		for _, o := range ops {
			if pick < o.weight {
				chosen = o
				break
			}
			pick -= o.weight
		}
		h.do(r, chosen)
	}
}

// do fires one op and classifies the outcome. Client-side cancellation
// (for ops that carry a deadline) and drain-window connection errors are
// expected; anything else unexplained is a violation.
func (h *harness) do(r *rand.Rand, o op) {
	h.count(o.name)
	ctx := context.Background()
	if o.cancelWithin > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(r.Int63n(int64(o.cancelWithin-4*time.Millisecond)))+5*time.Millisecond)
		defer cancel()
	}
	var body io.Reader
	if o.body != nil {
		body = bytes.NewReader(o.body(r))
	}
	req, err := http.NewRequestWithContext(ctx, o.method, "http://"+h.addr+o.path, body)
	if err != nil {
		h.violate("%s: build request: %v", o.name, err)
		return
	}
	if o.method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := h.client.Do(req)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			h.count(o.name + ":canceled")
		case h.draining.Load():
			h.count(o.name + ":conn-closed-drain")
		default:
			h.violate("%s: transport error outside drain: %v", o.name, err)
		}
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	for _, code := range o.accept {
		if resp.StatusCode == code {
			h.count(fmt.Sprintf("%s:%d", o.name, code))
			return
		}
	}
	h.violate("%s: status %d outside accept set %v", o.name, resp.StatusCode, o.accept)
}

// settleCheck polls /statusz until every gauge is back at baseline: no
// in-flight requests, no bulkhead or worker-pool tokens held, breaker
// not stuck open, goroutines within slack of the pre-soak count.
func (h *harness) settleCheck(baseline httpapi.StatusResponse, wait time.Duration, slack int) (httpapi.StatusResponse, bool) {
	deadline := time.Now().Add(wait)
	var last httpapi.StatusResponse
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := h.status()
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		last, lastErr = st, nil
		if st.Inflight == 0 && st.SimInflight == 0 && st.WorkerTokens == 0 &&
			st.Breaker != "open" && st.Goroutines <= baseline.Goroutines+slack {
			return st, true
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastErr != nil {
		h.violate("settle: /statusz unreachable: %v", lastErr)
	} else {
		h.violate("settle: gauges not at baseline after %s: inflight=%d simInflight=%d workerTokens=%d breaker=%s goroutines=%d (baseline %d, slack %d)",
			wait, last.Inflight, last.SimInflight, last.WorkerTokens, last.Breaker,
			last.Goroutines, baseline.Goroutines, slack)
	}
	return last, false
}

// grayPhase runs one gray-failure churn — a single 15x slow node under
// the hedged routing policy — on a settled server and asserts the stack
// treats it as a degraded-but-healthy run: the request completes with
// 200, the response carries per-node health, and the simulation circuit
// breaker stays closed. A gray node is the routing layer's problem to
// absorb; if it opened the breaker, one limping disk would blind the
// whole service.
func (h *harness) grayPhase() {
	before, err := h.status()
	if err != nil {
		h.violate("gray: /statusz before run: %v", err)
		return
	}
	if before.Breaker == "open" {
		h.violate("gray: breaker already open before the gray run")
		return
	}
	body := []byte(`{"zipfMovies":3,"nodes":2,"replicas":2,"headroom":1.6,` +
		`"lambda":0.5,"horizon":600,"warmup":60,"seed":7,"frozen":true,` +
		`"gray":"slow:node0@100-500:15","policy":"hedge"}`)
	churn, raw, ok := h.churnRun("gray", body)
	if !ok {
		return
	}
	if len(churn.NodeHealth) == 0 {
		h.violate("gray: churn response has no node health: %s", raw)
	}
	if churn.HedgeWins > churn.Hedges {
		h.violate("gray: hedge wins %d exceed hedges %d", churn.HedgeWins, churn.Hedges)
	}
	after, err := h.status()
	if err != nil {
		h.violate("gray: /statusz after run: %v", err)
		return
	}
	if after.Breaker != "closed" {
		h.violate("gray: breaker %q after a single slow node — gray degradation must not trip the circuit", after.Breaker)
		return
	}
	h.count("gray-phase:ok")
	log.Printf("gray phase: single slow node absorbed, breaker=%s quarantines=%d hedges=%d",
		after.Breaker, churn.Quarantines, churn.Hedges)
}

// churnRun posts one churn request, retrying a lingering shed from the
// soak, and decodes the response. Violations are recorded under phase.
func (h *harness) churnRun(phase string, body []byte) (httpapi.ClusterChurnResponse, []byte, bool) {
	var resp *http.Response
	for attempt := 0; attempt < 5; attempt++ {
		req, err := http.NewRequest(http.MethodPost, "http://"+h.addr+"/v1/cluster/churn", bytes.NewReader(body))
		if err != nil {
			h.violate("%s: build request: %v", phase, err)
			return httpapi.ClusterChurnResponse{}, nil, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err = h.client.Do(req)
		if err != nil {
			h.violate("%s: transport error: %v", phase, err)
			return httpapi.ClusterChurnResponse{}, nil, false
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			break
		}
		// A lingering shed from the soak; give the server a beat.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp = nil
		time.Sleep(500 * time.Millisecond)
	}
	if resp == nil {
		h.violate("%s: churn request shed on every attempt", phase)
		return httpapi.ClusterChurnResponse{}, nil, false
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		h.violate("%s: churn status %d: %s", phase, resp.StatusCode, raw)
		return httpapi.ClusterChurnResponse{}, nil, false
	}
	var churn httpapi.ClusterChurnResponse
	if err := json.Unmarshal(raw, &churn); err != nil {
		h.violate("%s: decode churn response: %v", phase, err)
		return httpapi.ClusterChurnResponse{}, nil, false
	}
	return churn, raw, true
}

// brownoutPhase browns out the WHOLE fleet — every node at 0.5 capacity
// — under hedged routing with a small hedge token bucket, and asserts
// the budget actually bounds hedging: when everyone is slow, hedging is
// pure amplification, so total hedges must stay within the bucket's
// burst plus its refill over the run (refill is at most 0.25 per
// arrival, scaled down by fleet health). The breaker must stay closed —
// a fleet-wide brownout is degraded service, not an outage — and the
// drain phase that follows must still complete.
func (h *harness) brownoutPhase() {
	const hedgeBudget = 4
	before, err := h.status()
	if err != nil {
		h.violate("brownout: /statusz before run: %v", err)
		return
	}
	if before.Breaker == "open" {
		h.violate("brownout: breaker already open before the brownout run")
		return
	}
	body := []byte(fmt.Sprintf(`{"zipfMovies":3,"nodes":2,"replicas":2,"headroom":1.6,`+
		`"lambda":0.5,"horizon":600,"warmup":60,"seed":11,"frozen":true,`+
		`"gray":"brownout:node0@100-500:0.5,brownout:node1@100-500:0.5",`+
		`"policy":"hedge","hedgeBudget":%d}`, hedgeBudget))
	churn, raw, ok := h.churnRun("brownout", body)
	if !ok {
		return
	}
	// Token-bucket ceiling: the bucket starts full and refills at most
	// 0.25 tokens per arrival, so hedges can never exceed this.
	ceiling := hedgeBudget + 0.25*float64(churn.Arrivals)
	if float64(churn.Hedges) > ceiling {
		h.violate("brownout: %d hedges exceed the budget ceiling %.1f (budget %d, arrivals %d): %s",
			churn.Hedges, ceiling, hedgeBudget, churn.Arrivals, raw)
	}
	if churn.HedgeWins > churn.Hedges {
		h.violate("brownout: hedge wins %d exceed hedges %d", churn.HedgeWins, churn.Hedges)
	}
	after, err := h.status()
	if err != nil {
		h.violate("brownout: /statusz after run: %v", err)
		return
	}
	if after.Breaker != "closed" {
		h.violate("brownout: breaker %q after a fleet-wide brownout — degraded capacity must not trip the circuit", after.Breaker)
		return
	}
	h.count("brownout-phase:ok")
	log.Printf("brownout phase: fleet-wide brownout absorbed, breaker=%s hedges=%d denied=%d ceiling=%.1f",
		after.Breaker, churn.Hedges, churn.HedgeDenied, ceiling)
}

// sigtermPhase sends SIGTERM, verifies the drain window sheds new work
// cleanly (503 or a closed listener — never a 500 or a hang), and waits
// for the process to exit.
func (h *harness) sigtermPhase(pid int, exitWait time.Duration) {
	log.Printf("sending SIGTERM to %d and probing the drain window", pid)
	h.draining.Store(true)
	if err := syscall.Kill(pid, syscall.SIGTERM); err != nil {
		h.violate("sigterm: kill %d: %v", pid, err)
		return
	}
	// Probe the drain: each response must be a clean shed or a closed
	// connection; a 200 can race the signal and is fine.
	probe := rand.New(rand.NewSource(h.rng.seed + 9999))
	for i := 0; i < 10; i++ {
		h.do(probe, op{name: "drain-probe", method: http.MethodPost, path: "/v1/hit",
			body:   func(r *rand.Rand) []byte { return []byte(`{"config":{"l":120,"b":60,"n":30},"profile":{}}`) },
			accept: []int{200, 503}})
		// The cluster routes sit behind the same drain gates; probe one
		// so a drain regression scoped to the newer mux paths is caught.
		h.do(probe, op{name: "drain-probe-cluster", method: http.MethodPost, path: "/v1/cluster/plan",
			body:   func(r *rand.Rand) []byte { return []byte(`{"zipfMovies":2,"nodes":2}`) },
			accept: []int{200, 503}})
		time.Sleep(20 * time.Millisecond)
	}
	deadline := time.Now().Add(exitWait)
	for {
		err := syscall.Kill(pid, 0)
		if errors.Is(err, syscall.ESRCH) {
			log.Printf("server %d exited cleanly after drain", pid)
			return
		}
		if time.Now().After(deadline) {
			h.violate("sigterm: server %d still running %s after SIGTERM", pid, exitWait)
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// report prints the op/outcome counts and any violations.
func (h *harness) report() {
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make([]string, 0, len(h.opCounts))
	total := 0
	for k, n := range h.opCounts {
		keys = append(keys, k)
		if !strings.Contains(k, ":") {
			total += n
		}
	}
	sort.Strings(keys)
	log.Printf("soak complete: %d requests", total)
	for _, k := range keys {
		log.Printf("  %-28s %6d", k, h.opCounts[k])
	}
	if len(h.violations) == 0 {
		log.Print("invariants: all held")
		return
	}
	log.Printf("invariants: %d VIOLATION(S)", len(h.violations))
	for i, v := range h.violations {
		if i == 20 {
			log.Printf("  ... %d more", len(h.violations)-20)
			break
		}
		log.Printf("  %s", v)
	}
}
