// Command vodmodel evaluates the analytic hit-probability model for one
// configuration, printing the per-operation probabilities and the
// hit_w / hit_j^i / P(end) decomposition.
//
// Usage:
//
//	vodmodel -l 120 -b 60 -n 30 -dur gamma:2:4
//	vodmodel -l 120 -w 1 -n 60 -dur exp:8 -pff 0.2 -prw 0.2 -ppau 0.6
//
// Give either -b (buffer minutes) or -w (maximum wait; buffer follows
// from Eq. 2 as B = l − n·w). The duration spec is family:params —
// exp:mean, gamma:shape:scale, uniform:a:b, det:v, weibull:shape:scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"vodalloc/internal/analytic"
	"vodalloc/internal/cliutil"
)

func main() {
	l := flag.Float64("l", 120, "movie length, minutes")
	b := flag.Float64("b", -1, "total playback buffer, movie-minutes")
	w := flag.Float64("w", -1, "maximum waiting time, minutes (alternative to -b)")
	n := flag.Int("n", 30, "number of I/O streams / partitions")
	durSpec := flag.String("dur", "gamma:2:4", "duration distribution: exp:m | gamma:k:theta | uniform:a:b | det:v | weibull:k:lambda")
	rFF := flag.Float64("rff", 3, "fast-forward rate (multiples of playback)")
	rRW := flag.Float64("rrw", 3, "rewind rate (multiples of playback)")
	pFF := flag.Float64("pff", 0.2, "mix probability of FF")
	pRW := flag.Float64("prw", 0.2, "mix probability of RW")
	pPAU := flag.Float64("ppau", 0.6, "mix probability of PAU")
	flag.Parse()

	var cfg analytic.Config
	var err error
	switch {
	case *b >= 0 && *w >= 0:
		fatal(fmt.Errorf("give only one of -b and -w"))
	case *w >= 0:
		cfg, err = analytic.FromWait(*l, *w, *n, 1, *rFF, *rRW)
	case *b >= 0:
		cfg = analytic.Config{L: *l, B: *b, N: *n, RatePB: 1, RateFF: *rFF, RateRW: *rRW}
		err = cfg.Validate()
	default:
		fatal(fmt.Errorf("give one of -b or -w"))
	}
	if err != nil {
		fatal(err)
	}

	dur, err := cliutil.ParseDist(*durSpec)
	if err != nil {
		fatal(err)
	}
	model, err := analytic.New(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("config: l=%g B=%.2f n=%d w=%.3f partition=%.3f α=%.3f γ=%.3f\n",
		cfg.L, cfg.B, cfg.N, cfg.Wait(), cfg.PartitionSize(), cfg.Alpha(), cfg.GammaRW())
	for _, op := range []analytic.Op{analytic.FF, analytic.RW, analytic.PAU} {
		bd := model.BreakdownOf(op, dur)
		fmt.Printf("P(hit|%s) = %.4f  (within %.4f, %d jump terms %.4f, end %.4f)\n",
			op, bd.Total, bd.Within, len(bd.Jumps), sum(bd.Jumps), bd.End)
	}
	mix := analytic.Mix{PFF: *pFF, PRW: *pRW, PPAU: *pPAU, FF: dur, RW: dur, PAU: dur}
	p, err := model.HitMix(mix)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("P(hit) = %.4f under mix (FF %.2f, RW %.2f, PAU %.2f)\n", p, *pFF, *pRW, *pPAU)
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodmodel:", err)
	os.Exit(1)
}
