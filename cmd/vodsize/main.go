// Command vodsize runs the paper's §5 system-sizing workflow on the
// Example 1 catalog or a custom movie list: feasible sets, the
// minimum-buffer plan, and cost curves.
//
// Usage:
//
//	vodsize -plan                       # Example 1 minimum-buffer plan
//	vodsize -plan -maxstreams 500       # with a stream budget
//	vodsize -feasible movie2 -step 5    # a movie's (B, n) frontier
//	vodsize -curve -phi 11              # a Figure 9 cost curve
//	vodsize -movie custom:100:0.2:0.5:exp:4 -plan
//	vodsize -config catalog.json -plan
//	vodsize -plan -parallel 8           # cap sweep workers (0 = all CPUs)
//
// Custom movies use name:length:wait:target:durfamily:params…, with the
// §4 mixed VCR behaviour (0.2/0.2/0.6).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"vodalloc/internal/cliutil"
	"vodalloc/internal/dist"
	"vodalloc/internal/sizing"
	"vodalloc/internal/workload"
)

func main() {
	plan := flag.Bool("plan", false, "compute the minimum-buffer plan")
	feasible := flag.String("feasible", "", "print the feasible set of the named movie")
	step := flag.Float64("step", 5, "buffer step for -feasible, minutes")
	curve := flag.Bool("curve", false, "print the cost curve")
	phi := flag.Float64("phi", 10.714285714285714, "buffer/stream price ratio for -curve (Example 2 ≈ 10.71)")
	maxStreams := flag.Int("maxstreams", 0, "stream budget for -plan (0 = unbounded)")
	maxBuffer := flag.Float64("maxbuffer", 0, "buffer budget for -plan, minutes (0 = unbounded)")
	configPath := flag.String("config", "", "JSON catalog file (see workload.CatalogSpec); overrides -movie")
	par := flag.Int("parallel", 0, "worker cap for sizing sweeps (0 = GOMAXPROCS, 1 = sequential)")
	resume := flag.String("resume", "", "checkpoint directory: load the model-evaluation cache from there and save it back on exit")
	var movieSpecs multiFlag
	flag.Var(&movieSpecs, "movie", "custom movie spec name:length:wait:target:dist…; repeatable (default: Example 1 catalog)")
	flag.Parse()

	// A per-invocation evaluator: sweeps share its memo cache and worker
	// budget without touching the process-wide sizing.Default.
	eval := &sizing.Evaluator{Workers: *par}
	var cachePath string
	if *resume != "" {
		if err := os.MkdirAll(*resume, 0o755); err != nil {
			fatal(err)
		}
		cachePath = filepath.Join(*resume, "evalcache.ckpt")
		switch n, err := eval.LoadCache(cachePath); {
		case err == nil:
			fmt.Fprintf(os.Stderr, "vodsize: loaded %d cached model evaluations from %s\n", n, cachePath)
		case errors.Is(err, os.ErrNotExist):
			// Cold start: nothing to load yet.
		default:
			fmt.Fprintf(os.Stderr, "vodsize: ignoring unusable cache: %v\n", err)
		}
		// Persist incrementally too, so a killed sweep still leaves most
		// of its evaluations behind for the next run.
		eval.AutoSave(cachePath, 64)
		defer func() {
			if n, err := eval.SaveCache(cachePath); err != nil {
				fmt.Fprintf(os.Stderr, "vodsize: save cache: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "vodsize: saved %d model evaluations to %s\n", n, cachePath)
			}
		}()
	}

	movies := workload.Example1Movies()
	if *configPath != "" {
		var err error
		movies, err = workload.LoadCatalog(*configPath)
		if err != nil {
			fatal(err)
		}
	} else if len(movieSpecs) > 0 {
		movies = movies[:0]
		for _, spec := range movieSpecs {
			m, err := parseMovie(spec)
			if err != nil {
				fatal(err)
			}
			movies = append(movies, m)
		}
	}

	did := false
	if *feasible != "" {
		did = true
		found := false
		for _, m := range movies {
			if m.Name != *feasible {
				continue
			}
			found = true
			pts, err := eval.FeasibleByBufferStep(m, sizing.DefaultRates, *step)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: l=%g w=%g P*=%g\n", m.Name, m.Length, m.Wait, m.TargetHit)
			fmt.Printf("%10s %8s %10s %9s\n", "B(min)", "n", "P(hit)", "feasible")
			for _, p := range pts {
				mark := ""
				if p.Feasible {
					mark = "✓"
				}
				fmt.Printf("%10.1f %8d %10.4f %9s\n", p.B, p.N, p.Hit, mark)
			}
		}
		if !found {
			fatal(fmt.Errorf("no movie named %q in the catalog", *feasible))
		}
	}
	if *plan {
		did = true
		pure := sizing.PureBatchingStreams(movies)
		p, err := eval.MinBufferPlan(movies, sizing.DefaultRates, *maxStreams, *maxBuffer)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pure batching baseline: %d streams\n", pure)
		for _, a := range p.Allocs {
			fmt.Printf("%s: B*=%.1f min, n*=%d, P(hit)=%.4f, w=%g\n", a.Movie, a.B, a.N, a.Hit, a.Wait)
		}
		fmt.Printf("totals: ΣB=%.1f min, Σn=%d streams, saved=%d streams vs pure batching\n",
			p.TotalBuffer, p.TotalStreams, pure-p.TotalStreams)
	}
	if *curve {
		did = true
		pts, err := eval.CostCurve(movies, sizing.DefaultRates, *phi, 40)
		if err != nil {
			fatal(err)
		}
		min, err := sizing.MinCostPoint(pts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cost curve at φ=%.3f (cost in units of Cn); minimum %.1f at Σn=%d\n",
			*phi, min.RelativeCost, min.TotalStreams)
		fmt.Printf("%10s %12s %14s\n", "Σn", "ΣB(min)", "cost/Cn")
		for _, p := range pts {
			fmt.Printf("%10d %12.1f %14.1f\n", p.TotalStreams, p.TotalBuffer, p.RelativeCost)
		}
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseMovie reads name:length:wait:target:dist-spec….
func parseMovie(spec string) (workload.Movie, error) {
	parts := strings.SplitN(spec, ":", 5)
	if len(parts) != 5 {
		return workload.Movie{}, fmt.Errorf("movie spec %q: want name:length:wait:target:dist", spec)
	}
	length, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return workload.Movie{}, fmt.Errorf("movie %q length: %v", parts[0], err)
	}
	wait, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return workload.Movie{}, fmt.Errorf("movie %q wait: %v", parts[0], err)
	}
	target, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return workload.Movie{}, fmt.Errorf("movie %q target: %v", parts[0], err)
	}
	dur, err := cliutil.ParseDist(parts[4])
	if err != nil {
		return workload.Movie{}, err
	}
	m := workload.Movie{
		Name: parts[0], Length: length, Wait: wait, TargetHit: target,
		Profile:    workload.MixedProfile(dur, dist.MustExponential(15)),
		Popularity: 1,
	}
	return m, m.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodsize:", err)
	os.Exit(1)
}
