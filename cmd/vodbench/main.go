// Command vodbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vodbench -exp all            # every experiment
//	vodbench -exp fig7a          # one panel (fig7a..fig7d, fig8, fig9, ex1, ex2, verify, sens, piggyback, e2e, faults)
//	vodbench -exp fig7d -quick   # smaller simulation horizons
//
// Output is the textual form of each figure: the same rows/series the
// paper plots, with model and simulation side by side where applicable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vodalloc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig7a|fig7b|fig7c|fig7d|fig8|fig9|ex1|ex2|verify|sens|piggyback|e2e|faults|all")
	quick := flag.Bool("quick", false, "shrink simulation horizons for a fast pass")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == name || s == "all" {
				return true
			}
		}
		return false
	}

	ran := 0
	fig7 := map[string]experiments.Fig7Variant{
		"fig7a": experiments.Fig7FF,
		"fig7b": experiments.Fig7RW,
		"fig7c": experiments.Fig7PAU,
		"fig7d": experiments.Fig7Mixed,
	}
	for _, name := range []string{"fig7a", "fig7b", "fig7c", "fig7d"} {
		if !want(name) {
			continue
		}
		series, err := experiments.Fig7(fig7[name], opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintFig7(os.Stdout, fig7[name], series)
		ran++
	}
	if want("fig8") {
		results, err := experiments.Fig8(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintFig8(os.Stdout, results)
		ran++
	}
	if want("ex1") {
		r, err := experiments.Example1(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintExample1(os.Stdout, r)
		ran++
	}
	if want("fig9") {
		curves, err := experiments.Fig9(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintFig9(os.Stdout, curves)
		ran++
	}
	if want("ex2") {
		r, err := experiments.Example2(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintExample2(os.Stdout, r)
		ran++
	}
	if want("sens") {
		rows, err := experiments.Sensitivity(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintSensitivity(os.Stdout, rows)
		ran++
	}
	if want("piggyback") {
		rows, err := experiments.Piggyback(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintPiggyback(os.Stdout, rows)
		ran++
	}
	if want("e2e") {
		r, err := experiments.EndToEnd(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintEndToEnd(os.Stdout, r)
		ran++
	}
	if want("faults") {
		rows, err := experiments.Faults(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintFaults(os.Stdout, rows)
		ran++
	}
	if want("verify") {
		rows, err := experiments.VerifyTable(opts)
		if err != nil {
			fatal(err)
		}
		experiments.PrintVerifyTable(os.Stdout, rows)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "vodbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodbench:", err)
	os.Exit(1)
}
