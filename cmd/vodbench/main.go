// Command vodbench regenerates the paper's tables and figures.
//
// Usage:
//
//	vodbench -exp all                    # every experiment
//	vodbench -exp fig7a                  # one panel (fig7a..fig7d, fig8, fig9, ex1, ex2, verify, sens, piggyback, e2e, faults, cluster, churn, gray, scale)
//	vodbench -exp fig7d -quick           # smaller simulation horizons
//	vodbench -exp all -parallel 8        # cap sweep workers (0 = all CPUs, 1 = sequential)
//	vodbench -exp all -json bench.json   # append per-experiment wall-clock to a JSON artifact
//
// Output is the textual form of each figure: the same rows/series the
// paper plots, with model and simulation side by side where applicable.
// The figures are deterministic in -parallel: any worker count prints
// byte-identical output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vodalloc/internal/checkpoint"
	"vodalloc/internal/experiments"
	"vodalloc/internal/sizing"
)

// expTiming is one experiment's wall-clock measurement.
type expTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// benchRun is one vodbench invocation's record in the -json artifact.
type benchRun struct {
	Label        string      `json:"label,omitempty"`
	Quick        bool        `json:"quick"`
	Parallel     int         `json:"parallel"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	Seed         int64       `json:"seed"`
	Experiments  []expTiming `json:"experiments"`
	TotalSeconds float64     `json:"total_seconds"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig7a|fig7b|fig7c|fig7d|fig8|fig9|ex1|ex2|verify|sens|piggyback|e2e|faults|cluster|churn|gray|scale|all")
	quick := flag.Bool("quick", false, "shrink simulation horizons for a fast pass")
	seed := flag.Int64("seed", 1, "simulation seed")
	par := flag.Int("parallel", 0, "worker cap for experiment sweeps (0 = GOMAXPROCS, 1 = sequential)")
	jsonPath := flag.String("json", "", "append per-experiment wall-clock timings to this JSON file")
	label := flag.String("label", "", "label recorded with the -json timings")
	resume := flag.String("resume", "", "checkpoint directory: journal completed sweep items there and resume a killed run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	baseline := flag.String("baseline", "", "compare this run's total against the latest entry of the JSON artifact at this path (warn on >15% slowdown)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *resume != "" {
		if err := os.MkdirAll(*resume, 0o755); err != nil {
			fatal(err)
		}
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *par, ResumeDir: *resume}
	// The sizing sweeps behind fig8/fig9/ex1/ex2 share the process-wide
	// evaluator; pin its parallelism to the same budget.
	sizing.Default.Workers = *par
	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == name || s == "all" {
				return true
			}
		}
		return false
	}

	fig7 := map[string]experiments.Fig7Variant{
		"fig7a": experiments.Fig7FF,
		"fig7b": experiments.Fig7RW,
		"fig7c": experiments.Fig7PAU,
		"fig7d": experiments.Fig7Mixed,
	}
	fig7Runner := func(name string) func(experiments.Options, io.Writer) error {
		return func(o experiments.Options, w io.Writer) error {
			series, err := experiments.Fig7(fig7[name], o)
			if err != nil {
				return err
			}
			experiments.PrintFig7(w, fig7[name], series)
			return nil
		}
	}
	runners := []struct {
		name string
		run  func(experiments.Options, io.Writer) error
	}{
		{"fig7a", fig7Runner("fig7a")},
		{"fig7b", fig7Runner("fig7b")},
		{"fig7c", fig7Runner("fig7c")},
		{"fig7d", fig7Runner("fig7d")},
		{"fig8", func(o experiments.Options, w io.Writer) error {
			results, err := experiments.Fig8(o)
			if err != nil {
				return err
			}
			experiments.PrintFig8(w, results)
			return nil
		}},
		{"ex1", func(o experiments.Options, w io.Writer) error {
			r, err := experiments.Example1(o)
			if err != nil {
				return err
			}
			experiments.PrintExample1(w, r)
			return nil
		}},
		{"fig9", func(o experiments.Options, w io.Writer) error {
			curves, err := experiments.Fig9(o)
			if err != nil {
				return err
			}
			experiments.PrintFig9(w, curves)
			return nil
		}},
		{"ex2", func(o experiments.Options, w io.Writer) error {
			r, err := experiments.Example2(o)
			if err != nil {
				return err
			}
			experiments.PrintExample2(w, r)
			return nil
		}},
		{"sens", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Sensitivity(o)
			if err != nil {
				return err
			}
			experiments.PrintSensitivity(w, rows)
			return nil
		}},
		{"piggyback", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Piggyback(o)
			if err != nil {
				return err
			}
			experiments.PrintPiggyback(w, rows)
			return nil
		}},
		{"e2e", func(o experiments.Options, w io.Writer) error {
			r, err := experiments.EndToEnd(o)
			if err != nil {
				return err
			}
			experiments.PrintEndToEnd(w, r)
			return nil
		}},
		{"faults", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Faults(o)
			if err != nil {
				return err
			}
			experiments.PrintFaults(w, rows)
			return nil
		}},
		{"cluster", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Cluster(o)
			if err != nil {
				return err
			}
			experiments.PrintCluster(w, rows)
			return nil
		}},
		{"churn", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Churn(o)
			if err != nil {
				return err
			}
			experiments.PrintChurn(w, rows)
			return nil
		}},
		{"gray", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Gray(o)
			if err != nil {
				return err
			}
			experiments.PrintGray(w, rows)
			return nil
		}},
		{"scale", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.Scale(o)
			if err != nil {
				return err
			}
			experiments.PrintScale(w, rows)
			return nil
		}},
		{"verify", func(o experiments.Options, w io.Writer) error {
			rows, err := experiments.VerifyTable(o)
			if err != nil {
				return err
			}
			experiments.PrintVerifyTable(w, rows)
			return nil
		}},
	}

	run := benchRun{
		Label:      *label,
		Quick:      *quick,
		Parallel:   *par,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
	}
	start := time.Now()
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		t0 := time.Now()
		if err := r.run(opts, os.Stdout); err != nil {
			fatal(err)
		}
		run.Experiments = append(run.Experiments, expTiming{
			Name:    r.name,
			Seconds: time.Since(t0).Seconds(),
		})
	}
	run.TotalSeconds = time.Since(start).Seconds()
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // flush recently freed objects so the profile shows live + cumulative allocs accurately
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if len(run.Experiments) == 0 {
		fmt.Fprintf(os.Stderr, "vodbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := appendRun(*jsonPath, run); err != nil {
			fatal(err)
		}
	}
	if *baseline != "" {
		if err := compareBaseline(*baseline, run); err != nil {
			fatal(err)
		}
	}
}

// compareBaseline diffs this run's total wall clock against the latest
// entry of the bench artifact at path (the BENCH_sweeps.json protocol)
// and prints a regression warning when the run is more than 15% slower.
// Only a missing or malformed artifact is an error: a slowdown warns on
// stderr — machines differ — leaving the judgment call to CI logs.
func compareBaseline(path string, run benchRun) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var runs []benchRun
	if err := json.Unmarshal(data, &runs); err != nil {
		return fmt.Errorf("%s is not a bench-run array: %v", path, err)
	}
	if len(runs) == 0 {
		return fmt.Errorf("%s holds no baseline runs", path)
	}
	base := runs[len(runs)-1]
	ratio := run.TotalSeconds / base.TotalSeconds
	verdict := "ok"
	if ratio > 1.15 {
		verdict = "WARNING: >15% slower than baseline"
	}
	fmt.Fprintf(os.Stderr, "vodbench: total %.2fs vs baseline %.2fs (%q): %.0f%% — %s\n",
		run.TotalSeconds, base.TotalSeconds, base.Label, 100*ratio, verdict)
	return nil
}

// appendRun appends the run to the JSON array at path, creating the file
// on first use so successive invocations (e.g. before/after a change)
// accumulate into one artifact.
func appendRun(path string, run benchRun) error {
	var runs []benchRun
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &runs); err != nil {
			return fmt.Errorf("existing %s is not a bench-run array: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, run)
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	// Write-temp-then-rename: a crash mid-write must never leave the
	// accumulated artifact half-serialized.
	return checkpoint.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodbench:", err)
	os.Exit(1)
}
