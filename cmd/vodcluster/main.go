// Command vodcluster plans and simulates a multi-node VOD cluster: it
// sizes each movie with the paper's §5 pre-allocation, bin-packs the
// allocations onto nodes (optionally replicating hot movies), and can
// drive one simulated server per node with failover routing and
// node-outage injection.
//
// Usage:
//
//	vodcluster -nodes 3                                    # plan Example 1 onto 3 nodes
//	vodcluster plan -nodes 4 -movies 12 -theta 0.8 -replicas 2 -hot 4
//	vodcluster simulate -nodes 3 -lambda 1.5 -horizon 3000 -fail "node0@500-1500"
//	vodcluster sweep -min-nodes 1 -max-nodes 6 -lambda 1.5 -resume ckpt/
//	vodcluster churn -nodes 4 -lambda 1.5 -flash "m01@300:4" -budget-mb 20000 -resume ckpt/
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vodalloc/internal/checkpoint"
	"vodalloc/internal/cluster"
	"vodalloc/internal/sim"
	"vodalloc/internal/sizing"
	"vodalloc/internal/vcr"
	"vodalloc/internal/workload"
)

// phi is the buffer-to-stream price ratio of the paper's Example 2
// hardware ($750/$70 ≈ 11); relative cost = φ·ΣB + Σn.
const phi = 11.0

var paperRates = vcr.Rates{PB: 1, FF: 3, RW: 3}

func main() {
	args := os.Args[1:]
	cmd := "plan"
	if len(args) > 0 {
		switch args[0] {
		case "plan", "simulate", "sweep", "churn":
			cmd, args = args[0], args[1:]
		case "help", "-h", "-help", "--help":
			usage()
			return
		}
	}
	var err error
	switch cmd {
	case "plan":
		err = runPlan(args)
	case "simulate":
		err = runSimulate(args)
	case "sweep":
		err = runSweep(args)
	case "churn":
		err = runChurn(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodcluster:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `vodcluster <plan|simulate|sweep> [flags]

  plan      size the catalog and bin-pack it onto nodes (the default)
  simulate  plan, then run one simulated server per node with failover routing
  sweep     plan+simulate across a range of node counts
  churn     drive a time-varying workload with the live rebalancing controller

Run "vodcluster <subcommand> -h" for flags.`)
}

// catalogFlags is the movie-source selection shared by every
// subcommand.
type catalogFlags struct {
	movies  *int
	theta   *float64
	catalog *string
}

func addCatalogFlags(fs *flag.FlagSet) catalogFlags {
	return catalogFlags{
		movies:  fs.Int("movies", 0, "generate an N-movie Zipf catalog (0 = the paper's Example 1 catalog)"),
		theta:   fs.Float64("theta", 0.8, "Zipf skew for -movies"),
		catalog: fs.String("catalog", "", "JSON catalog file (overrides -movies)"),
	}
}

func (c catalogFlags) load() ([]workload.Movie, error) {
	switch {
	case *c.catalog != "":
		return workload.LoadCatalog(*c.catalog)
	case *c.movies > 0:
		return workload.ZipfCatalog(*c.movies, *c.theta)
	default:
		return workload.Example1Movies(), nil
	}
}

// clusterFlags is the node/placement shape shared by every subcommand.
type clusterFlags struct {
	nodes       *int
	nodeStreams *int
	nodeBuffer  *float64
	headroom    *float64
	replicas    *int
	hot         *int
	par         *int
}

func addClusterFlags(fs *flag.FlagSet) clusterFlags {
	return clusterFlags{
		nodes:       fs.Int("nodes", 3, "node count"),
		nodeStreams: fs.Int("node-streams", 0, "per-node stream budget n_s (0 = auto-size)"),
		nodeBuffer:  fs.Float64("node-buffer", 0, "per-node buffer budget B_s, movie-minutes (0 = auto-size)"),
		headroom:    fs.Float64("headroom", 1.3, "auto-sizing slack factor"),
		replicas:    fs.Int("replicas", 1, "copies per hot movie (1 = no replication)"),
		hot:         fs.Int("hot", 0, "how many top-popularity movies replicate (0 = all, when -replicas > 1)"),
		par:         fs.Int("parallel", 0, "worker bound for sizing and per-node simulations (0 = GOMAXPROCS)"),
	}
}

func (c clusterFlags) opts() cluster.Options {
	return cluster.Options{Replicas: *c.replicas, HotMovies: *c.hot}
}

// plan sizes the catalog and packs it onto count nodes per the flags.
func (c clusterFlags) plan(ctx context.Context, movies []workload.Movie, count int) (cluster.Placement, []cluster.MovieAlloc, error) {
	sizing.Default.Workers = *c.par
	allocs, err := cluster.Demands(ctx, nil, movies, sizing.DefaultRates)
	if err != nil {
		return cluster.Placement{}, nil, err
	}
	var nodes []cluster.NodeSpec
	if *c.nodeStreams > 0 && *c.nodeBuffer > 0 {
		nodes = cluster.UniformNodes(count, *c.nodeStreams, *c.nodeBuffer)
	} else if *c.nodeStreams > 0 || *c.nodeBuffer > 0 {
		return cluster.Placement{}, nil, fmt.Errorf("give both -node-streams and -node-buffer, or neither")
	} else {
		nodes = cluster.AutoNodes(count, allocs, c.opts(), *c.headroom)
	}
	p, err := cluster.PackAllocs(allocs, nodes, c.opts())
	if err != nil {
		return cluster.Placement{}, nil, err
	}
	return p, allocs, nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	cat := addCatalogFlags(fs)
	cf := addClusterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	movies, err := cat.load()
	if err != nil {
		return err
	}
	p, _, err := cf.plan(context.Background(), movies, *cf.nodes)
	if err != nil {
		return err
	}
	printPlan(p, movies)
	return nil
}

func printPlan(p cluster.Placement, movies []workload.Movie) {
	fmt.Printf("plan: %d movies on %d nodes\n", len(movies), len(p.Nodes))
	fmt.Printf("  total streams=%d buffer=%.1f relative cost=%.0f", p.TotalStreams, p.TotalBuffer, phi*p.TotalBuffer+float64(p.TotalStreams))
	if p.DroppedReplicas > 0 {
		fmt.Printf("  dropped replicas=%d", p.DroppedReplicas)
	}
	if p.RefineMoves > 0 {
		fmt.Printf("  refine moves=%d", p.RefineMoves)
	}
	fmt.Println()
	byNode := map[string][]cluster.Assignment{}
	for _, a := range p.Assignments {
		byNode[a.Node] = append(byNode[a.Node], a)
	}
	for _, n := range p.Nodes {
		as := byNode[n.ID]
		sort.Slice(as, func(i, j int) bool { return as[i].Movie < as[j].Movie })
		var streams int
		var buffer float64
		parts := make([]string, 0, len(as))
		for _, a := range as {
			streams += a.N
			buffer += a.B
			tag := ""
			if a.Replica > 0 {
				tag = fmt.Sprintf(" r%d", a.Replica)
			}
			parts = append(parts, fmt.Sprintf("%s%s (B=%.1f n=%d)", a.Movie, tag, a.B, a.N))
		}
		fmt.Printf("[%s] streams=%d/%d buffer=%.1f/%.1f  %s\n",
			n.ID, streams, n.MaxStreams, buffer, n.MaxBuffer, strings.Join(parts, ", "))
	}
}

// simFlags are the load/horizon knobs shared by simulate and sweep.
type simFlags struct {
	lambda         *float64
	horizon        *float64
	warmup         *float64
	seed           *int64
	resume         *string
	engine         *string
	fluidThreshold *float64
	particleRate   *float64
}

func addSimFlags(fs *flag.FlagSet) simFlags {
	return simFlags{
		lambda:  fs.Float64("lambda", 1.5, "cluster-wide Poisson arrival rate, viewers/minute"),
		horizon: fs.Float64("horizon", 3000, "simulated minutes"),
		warmup:  fs.Float64("warmup", -1, "measurement warmup, minutes (-1 = horizon/10)"),
		seed:    fs.Int64("seed", 1, "random seed"),
		resume:  fs.String("resume", "", "checkpoint directory: journal per-node rows there and resume a killed run"),
		engine:  fs.String("engine", "des", "per-node simulation backend: des|fluid|hybrid"),
		fluidThreshold: fs.Float64("fluid-threshold", 0,
			"hybrid mode: per-movie arrival rate at or above which a copy runs fluid"),
		particleRate: fs.Float64("particle-rate", 0, "fluid shadow-viewer rate per minute (0 = default)"),
	}
}

func (s simFlags) warmupVal() float64 {
	if *s.warmup >= 0 {
		return *s.warmup
	}
	return *s.horizon / 10
}

func (s simFlags) config(p cluster.Placement, movies []workload.Movie, workers int, faults []cluster.NodeFault) cluster.SimConfig {
	return cluster.SimConfig{
		Placement:      p,
		Movies:         movies,
		Rates:          paperRates,
		TotalRate:      *s.lambda,
		Horizon:        *s.horizon,
		Warmup:         s.warmupVal(),
		Seed:           *s.seed,
		Workers:        workers,
		Faults:         faults,
		Engine:         sim.Engine(*s.engine),
		FluidThreshold: *s.fluidThreshold,
		ParticleRate:   *s.particleRate,
	}
}

// runClusterSim dispatches one cluster simulation, journaling per-node
// rows under dir when non-empty and reporting what a rerun restored.
func runClusterSim(ctx context.Context, cfg cluster.SimConfig, dir, walName string) (*cluster.Result, error) {
	if dir == "" {
		return cluster.Simulate(ctx, cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	res, info, err := cluster.SimulateResumable(ctx, cfg, filepath.Join(dir, walName))
	if err != nil {
		return nil, err
	}
	if info.Restored > 0 || info.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "vodcluster: resumed %d of %d node rows from %s (torn tail: %d bytes)\n",
			info.Restored, len(cfg.Placement.Nodes), dir, info.TornBytes)
	}
	return res, nil
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	cat := addCatalogFlags(fs)
	cf := addClusterFlags(fs)
	sf := addSimFlags(fs)
	failSpec := fs.String("fail", "", `node outages: "node0@400,node2@500-1500" (permanent without -end)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	movies, err := cat.load()
	if err != nil {
		return err
	}
	ctx := context.Background()
	p, _, err := cf.plan(ctx, movies, *cf.nodes)
	if err != nil {
		return err
	}
	faults, err := cluster.ParseNodeFaults(*failSpec)
	if err != nil {
		return err
	}
	res, err := runClusterSim(ctx, sf.config(p, movies, *cf.par, faults), *sf.resume, "cluster-sim.wal")
	if err != nil {
		return err
	}
	printPlan(p, movies)
	fmt.Printf("simulated %g min at lambda=%g\n", *sf.horizon, *sf.lambda)
	fmt.Print(res.Summary())
	return nil
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	cat := addCatalogFlags(fs)
	cf := addClusterFlags(fs)
	sf := addSimFlags(fs)
	minNodes := fs.Int("min-nodes", 1, "smallest node count")
	maxNodes := fs.Int("max-nodes", 6, "largest node count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *minNodes < 1 || *maxNodes < *minNodes {
		return fmt.Errorf("bad node range %d..%d", *minNodes, *maxNodes)
	}
	movies, err := cat.load()
	if err != nil {
		return err
	}
	ctx := context.Background()

	type row struct {
		nodes int
		p     cluster.Placement
		res   *cluster.Result
	}
	rows := make(map[int]row)
	// Descending node counts: the largest cluster has the most (and
	// cheapest, often empty) per-node rows, so a killed run has
	// journaled progress to restore almost immediately.
	for n := *maxNodes; n >= *minNodes; n-- {
		p, _, err := cf.plan(ctx, movies, n)
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", n, err)
		}
		res, err := runClusterSim(ctx, sf.config(p, movies, *cf.par, nil), *sf.resume,
			fmt.Sprintf("cluster-n%d.wal", n))
		if err != nil {
			return fmt.Errorf("nodes=%d: %w", n, err)
		}
		rows[n] = row{nodes: n, p: p, res: res}
	}

	fmt.Printf("cluster sweep: %d movies, lambda=%g, horizon=%g\n", len(movies), *sf.lambda, *sf.horizon)
	fmt.Printf("%5s %8s %9s %9s %8s %8s %8s %10s\n",
		"nodes", "streams", "buffer", "relcost", "P(hit)", "avail", "shed", "rebalances")
	for n := *minNodes; n <= *maxNodes; n++ {
		r := rows[n]
		fmt.Printf("%5d %8d %9.1f %9.0f %8.4f %8.4f %8.4f %10d\n",
			r.nodes, r.p.TotalStreams, r.p.TotalBuffer,
			phi*r.p.TotalBuffer+float64(r.p.TotalStreams),
			r.res.Hit, r.res.Availability, r.res.ShedRate, r.res.Rebalances)
	}
	return nil
}

// runChurn drives the live control plane: a time-varying workload
// (diurnal swing, Zipf drift, flash crowds) against the planned
// placement, with the budgeted rebalancing controller reacting online
// (or frozen, with -controller=false, for the baseline). With -resume
// the run journals replay checkpoints and survives a SIGKILL — even one
// landing mid-rebalance — byte-identically.
func runChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	cat := addCatalogFlags(fs)
	cf := addClusterFlags(fs)
	sf := addSimFlags(fs)
	failSpec := fs.String("fail", "", `node outages: "node0@400,node2@500-1500"`)
	graySpec := fs.String("gray", "", `gray faults: "slow:node0@300-700:12,brownout:node2@400-800:0.4" (kind:node@start[-end]:factor)`)
	policy := fs.String("policy", "", "routing policy under gray faults: blind|health|hedge (default blind)")
	starveWait := fs.Float64("starve-wait", 0, "admitted waits above this count as starved, minutes (0 = default 8)")
	evacuateDwell := fs.Float64("evacuate-dwell", 0, "drain replicas off nodes quarantined longer than this, minutes (0 = off; needs the controller)")
	hedgeBudget := fs.Float64("hedge-budget", 0, "token-bucket burst cap on hedged dispatch (0 = unlimited)")
	diskHealth := fs.Bool("disk-health", false, "track health and quarantine at disk granularity")
	nodeDisks := fs.Int("node-disks", 0, `disks per node, addressable in -gray as "slow:node0:d1@..." (0 = 1)`)
	flashSpec := fs.String("flash", "", `flash crowds: "m01@300:4" or "m01@300:4:10:60:30" (movie@at:peak[:ramp[:hold[:decay]]])`)
	diurnalPeriod := fs.Float64("diurnal-period", 0, "diurnal cycle length, minutes (0 = no diurnal swing)")
	diurnalAmp := fs.Float64("diurnal-amp", 0.3, "diurnal amplitude in [0,1), with -diurnal-period")
	driftTheta1 := fs.Float64("drift-theta1", -1, "Zipf exponent drifts from -theta to this over -drift-period (<0 = no drift)")
	driftPeriod := fs.Float64("drift-period", 0, "drift span, minutes (0 = horizon)")
	rotate := fs.Float64("rotate", 0, "minutes per one-position popularity rank rotation (0 = none)")
	epoch := fs.Float64("epoch", 0, "piecewise-constant rate step, minutes (0 = default)")
	budgetMB := fs.Float64("budget-mb", 0, "total migration budget, MB (0 = unlimited)")
	migrations := fs.Int("migrations", 0, "max concurrent migrations (0 = default 2)")
	interval := fs.Float64("interval", 0, "controller tick interval, minutes (0 = default 15)")
	controller := fs.Bool("controller", true, "enable the rebalancing controller (false = frozen placement baseline)")
	window := fs.Float64("window", 0, "availability-floor window, minutes (0 = 60)")
	ckptEvery := fs.Int("checkpoint-every", 2000, "events between checkpoints, with -resume")
	if err := fs.Parse(args); err != nil {
		return err
	}
	movies, err := cat.load()
	if err != nil {
		return err
	}
	ctx := context.Background()
	p, _, err := cf.plan(ctx, movies, *cf.nodes)
	if err != nil {
		return err
	}
	if *nodeDisks > 1 {
		for i := range p.Nodes {
			p.Nodes[i].Disks = *nodeDisks
		}
	}
	faults, err := cluster.ParseNodeFaults(*failSpec)
	if err != nil {
		return err
	}
	gray, err := cluster.ParseGrayFaults(*graySpec)
	if err != nil {
		return err
	}
	pol, err := cluster.ParseRoutePolicy(*policy)
	if err != nil {
		return err
	}
	flashes, err := workload.ParseFlashCrowds(*flashSpec)
	if err != nil {
		return err
	}
	dyn := workload.DynamicWorkload{
		Movies:   movies,
		BaseRate: *sf.lambda,
		Epoch:    *epoch,
		Flashes:  flashes,
	}
	if *diurnalPeriod > 0 {
		dyn.Diurnal = &workload.Diurnal{Period: *diurnalPeriod, Amplitude: *diurnalAmp}
	}
	if *driftTheta1 >= 0 {
		period := *driftPeriod
		if period <= 0 {
			period = *sf.horizon
		}
		dyn.Drift = &workload.ZipfDrift{Theta0: *cat.theta, Theta1: *driftTheta1, Period: period, Rotate: *rotate}
	} else if *rotate > 0 {
		dyn.Drift = &workload.ZipfDrift{Theta0: *cat.theta, Theta1: *cat.theta, Period: *sf.horizon, Rotate: *rotate}
	}
	cfg := cluster.ChurnConfig{
		Placement: p,
		Workload:  dyn,
		Horizon:   *sf.horizon,
		Warmup:    sf.warmupVal(),
		Seed:      *sf.seed,
		Controller: cluster.ControllerConfig{
			Interval:      *interval,
			BudgetBytes:   *budgetMB * 1e6,
			MaxConcurrent: *migrations,
			EvacuateDwell: *evacuateDwell,
		},
		ControllerOff: !*controller,
		Faults:        faults,
		Window:        *window,
		Gray:          gray,
		Policy:        pol,
		StarveWait:    *starveWait,
		Health: cluster.HealthConfig{
			HedgeBudget: *hedgeBudget,
			DiskHealth:  *diskHealth,
		},
	}
	var res *cluster.ChurnResult
	if *sf.resume != "" {
		res, err = runChurnResumable(ctx, cfg, *sf.resume, *ckptEvery)
	} else {
		res, err = cluster.RunChurn(ctx, cfg)
	}
	if err != nil {
		return err
	}
	mode := "controller on"
	if cfg.ControllerOff {
		mode = "frozen placement"
	}
	fmt.Printf("churn: %d movies on %d nodes, lambda=%g, horizon=%g (%s)\n",
		len(movies), *cf.nodes, *sf.lambda, *sf.horizon, mode)
	fmt.Print(res.Summary())
	return nil
}

// runChurnResumable mirrors vodsim's replay-checkpoint protocol for the
// churn engine: the snapshot payload is the configuration identity
// followed by the 24-byte checkpoint, a mismatched identity is refused
// before any replay, and a finished run removes its checkpoint.
func runChurnResumable(ctx context.Context, cfg cluster.ChurnConfig, dir string, every int) (*cluster.ChurnResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	identity := cfg.Identity()
	path := filepath.Join(dir, "churn.ckpt")
	sink := func(cp sim.Checkpoint) error {
		b, err := cp.MarshalBinary()
		if err != nil {
			return err
		}
		payload := append(binary.BigEndian.AppendUint64(nil, identity), b...)
		return checkpoint.WriteSnapshot(path, checkpoint.FormatVersion, checkpoint.KindChurnRun, payload)
	}

	var res *cluster.ChurnResult
	kind, payload, err := checkpoint.ReadSnapshot(path, checkpoint.FormatVersion)
	switch {
	case errors.Is(err, os.ErrNotExist):
		res, err = cluster.RunChurnCheckpointed(ctx, cfg, every, sink)
	case err != nil:
		return nil, err
	default:
		if kind != checkpoint.KindChurnRun || len(payload) != 32 {
			return nil, fmt.Errorf("%s: not a churn run checkpoint", path)
		}
		if got := binary.BigEndian.Uint64(payload); got != identity {
			return nil, fmt.Errorf("%s: %w: checkpoint was written by a different churn configuration", path, checkpoint.ErrIdentity)
		}
		var cp sim.Checkpoint
		if err := cp.UnmarshalBinary(payload[8:]); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "vodcluster: resuming churn from checkpoint at t=%.2f (%d events) in %s\n", cp.Now, cp.Fired, dir)
		res, err = cluster.ResumeChurnCheckpointed(ctx, cfg, cp, every, sink)
	}
	if err != nil {
		return nil, err
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		fmt.Fprintln(os.Stderr, "vodcluster: drop finished checkpoint:", err)
	}
	return res, nil
}
